"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.obs import Tracer, taxonomy
from repro.sim import SeededRng, Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(3.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_advance_to_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.advance_to(1.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_error_names_the_looping_events(self):
        """The exhaustion error must identify the probable culprit by
        reporting the most frequent recent event labels."""
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop, label="hot retransmit loop")
            sim.schedule(0.0, lambda: None)  # unlabelled bystander

        sim.schedule(0.0, loop, label="hot retransmit loop")
        with pytest.raises(SimulationError) as exc:
            sim.run(max_events=500)
        message = str(exc.value)
        assert "max_events=500" in message
        assert "'hot retransmit loop'" in message
        assert "<unlabelled>" in message

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1

    def test_handle_exposes_time_and_label(self):
        sim = Simulator()
        handle = sim.schedule(3.0, lambda: None, label="hello")
        assert handle.time == 3.0
        assert handle.label == "hello"


class TestTombstoneCompaction:
    """Cancelled events must not accumulate in the queue structures."""

    def test_cancel_heavy_workload_bounded_queue(self):
        sim = Simulator()
        # A chaos-style retransmit pattern: arm a timer, cancel it on
        # the (simulated) ack, repeat.  Without compaction the queue
        # grows with the cancellation history; with it, queue_len stays
        # within a small factor of the live event count.
        peak = 0
        for round_no in range(50):
            handles = [
                sim.schedule(100.0 + round_no, lambda: None, label="retx")
                for _ in range(100)
            ]
            for handle in handles:
                handle.cancel()
            peak = max(peak, sim.queue_len)
        assert sim.pending == 0
        # 5000 cancellations happened; the structures never held more
        # than a compaction window's worth of tombstones.
        assert peak < 500
        assert sim.queue_len < 200

    def test_live_events_survive_compaction(self):
        sim = Simulator()
        fired = []
        keep = [
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(10)
        ]
        doomed = [sim.schedule(5.0, lambda: fired.append("X"))
                  for _ in range(300)]
        for handle in doomed:
            handle.cancel()  # triggers compaction mid-stream
        assert sim.pending == len(keep)
        sim.run()
        assert fired == list(range(10))

    def test_cancel_during_run_compacts_safely(self):
        sim = Simulator()
        fired = []
        handles = []

        def cancel_wave():
            for handle in handles:
                handle.cancel()

        handles.extend(
            sim.schedule(10.0, lambda: fired.append("doomed"), label="d")
            for _ in range(200)
        )
        sim.schedule(1.0, cancel_wave)
        sim.schedule(20.0, lambda: fired.append("end"))
        sim.run()
        assert fired == ["end"]


class TestScheduleAtDrift:
    """schedule_at must tolerate epsilon-negative float deltas."""

    def test_accumulated_drift_does_not_crash(self):
        sim = Simulator()
        # Advance the clock through many unequal float steps, then
        # schedule at a time computed by a *different* summation order —
        # the classic way t == now comes out epsilon-negative.
        steps = [0.1] * 7 + [0.3] * 3
        fired = []
        for step in steps * 40:
            sim.schedule(step, lambda: None)
        sim.run()
        target = sum(steps * 40)  # float-sums differently than sim.now
        assert target != sim.now or True  # representative of drift
        sim.schedule_at(sim.now - 1e-12, lambda: fired.append("a"))
        sim.schedule_at(target, lambda: fired.append("b"))
        sim.run()
        assert "a" in fired and "b" in fired

    def test_epsilon_negative_clamped_to_now(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert sim.now == 100.0
        fired = []
        sim.schedule_at(
            100.0 - 1e-11, lambda: fired.append(sim.now)
        )  # epsilon in the past: clamped, not an error
        sim.run()
        assert fired == [100.0]

    def test_genuinely_past_times_still_rejected(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(99.0, lambda: None)


class TestWheelScheduler:
    """Behaviour specific to the calendar-queue core."""

    def test_far_timers_overflow_and_fire(self):
        sim = Simulator(wheel_slots=16, wheel_width=1.0)
        fired = []
        sim.schedule(2.0, lambda: fired.append("near"))
        sim.schedule(1000.0, lambda: fired.append("far"))
        sim.schedule(10_000.0, lambda: fired.append("farther"))
        sim.run()
        assert fired == ["near", "far", "farther"]
        assert sim.now == 10_000.0

    def test_callback_scheduling_into_current_bucket(self):
        sim = Simulator(wheel_width=10.0)
        fired = []

        def first():
            fired.append("first")
            # Lands later inside the bucket currently being processed.
            sim.schedule(3.0, lambda: fired.append("same-bucket"))
            sim.schedule(0.0, lambda: fired.append("same-instant"))

        sim.schedule(2.0, first)
        sim.schedule(4.0, lambda: fired.append("pre-existing"))
        sim.run()
        assert fired == ["first", "same-instant", "pre-existing",
                         "same-bucket"]

    def test_until_mid_bucket_preserves_leftovers(self):
        sim = Simulator(wheel_width=10.0)
        fired = []
        for t in (1.0, 2.0, 3.0, 8.0, 9.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(until=3.5)  # stop inside the first bucket
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.5
        assert sim.pending == 2
        sim.schedule(0.0, lambda: fired.append("immediate"))
        sim.run()
        assert fired == [1.0, 2.0, 3.0, "immediate", 8.0, 9.0]

    def test_rejects_bad_wheel_geometry(self):
        with pytest.raises(SimulationError):
            Simulator(wheel_width=0.0)
        with pytest.raises(SimulationError):
            Simulator(wheel_slots=1)

    def test_heap_fallback_is_gone(self):
        # The REPRO_SIM_SCHEDULER=heap escape hatch was removed after
        # its deprecation release; the constructor no longer takes a
        # scheduler selector at all.
        with pytest.raises(TypeError):
            Simulator(scheduler="heap")


class TestTrace:
    def test_tracer_sees_fired_events(self):
        sim = Simulator()
        tracer = Tracer(enabled=True, exclude=frozenset())
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None, label="one")
        sim.schedule(2.0, lambda: None, label="two")
        sim.run()
        fired = [
            (event.time, event.fields["label"])
            for event in tracer.events(taxonomy.SIM_FIRE)
        ]
        assert fired == [(1.0, "one"), (2.0, "two")]

    def test_sim_fire_excluded_by_default(self):
        sim = Simulator()
        tracer = Tracer(enabled=True)
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None, label="one")
        sim.run()
        assert len(tracer) == 0

    def test_disabled_tracer_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(exclude=frozenset())
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(tracer) == 0

    def test_fire_trace_sampling(self):
        sim = Simulator()
        tracer = Tracer(enabled=True, exclude=frozenset())
        sim.tracer = tracer
        sim.fire_trace_every = 10
        for i in range(100):
            sim.schedule(float(i), lambda: None, label="tick")
        sim.run()
        assert sim.events_fired == 100
        assert len(tracer.events(taxonomy.SIM_FIRE)) == 10  # every 10th

    def test_tracer_clock_follows_sim(self):
        sim = Simulator()
        tracer = Tracer()
        sim.tracer = tracer
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert tracer.clock is not None
        assert tracer.clock() == 5.0


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(42), SeededRng(42)
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a, b = SeededRng(1), SeededRng(2)
        assert [a.random() for _ in range(20)] != [
            b.random() for _ in range(20)
        ]

    def test_fork_is_deterministic(self):
        a, b = SeededRng(42), SeededRng(42)
        fa, fb = a.fork("x"), b.fork("x")
        assert [fa.random() for _ in range(10)] == [
            fb.random() for _ in range(10)
        ]

    def test_forks_are_distinct(self):
        rng = SeededRng(42)
        f1, f2 = rng.fork("x"), rng.fork("x")
        assert [f1.random() for _ in range(10)] != [
            f2.random() for _ in range(10)
        ]

    def test_zipf_index_in_range(self):
        rng = SeededRng(1)
        for _ in range(200):
            assert 0 <= rng.zipf_index(7, 1.2) < 7

    def test_zipf_skew_prefers_low_indices(self):
        rng = SeededRng(1)
        draws = [rng.zipf_index(10, 1.5) for _ in range(2000)]
        assert draws.count(0) > draws.count(9)

    def test_zipf_zero_skew_uniformish(self):
        rng = SeededRng(1)
        draws = [rng.zipf_index(4, 0.0) for _ in range(4000)]
        for value in range(4):
            assert 800 < draws.count(value) < 1200

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(1).zipf_index(0)

    def test_exponential_positive_with_roughly_right_mean(self):
        rng = SeededRng(3)
        draws = [rng.exponential(10.0) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert 9.0 < sum(draws) / len(draws) < 11.0

    def test_bernoulli_extremes(self):
        rng = SeededRng(4)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))
