"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.obs import Tracer, taxonomy
from repro.sim import SeededRng, Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(3.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_advance_to_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.advance_to(1.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_error_names_the_looping_events(self):
        """The exhaustion error must identify the probable culprit by
        reporting the most frequent recent event labels."""
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop, label="hot retransmit loop")
            sim.schedule(0.0, lambda: None)  # unlabelled bystander

        sim.schedule(0.0, loop, label="hot retransmit loop")
        with pytest.raises(SimulationError) as exc:
            sim.run(max_events=500)
        message = str(exc.value)
        assert "max_events=500" in message
        assert "'hot retransmit loop'" in message
        assert "<unlabelled>" in message

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1

    def test_handle_exposes_time_and_label(self):
        sim = Simulator()
        handle = sim.schedule(3.0, lambda: None, label="hello")
        assert handle.time == 3.0
        assert handle.label == "hello"


class TestTrace:
    def test_tracer_sees_fired_events(self):
        sim = Simulator()
        tracer = Tracer(enabled=True, exclude=frozenset())
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None, label="one")
        sim.schedule(2.0, lambda: None, label="two")
        sim.run()
        fired = [
            (event.time, event.fields["label"])
            for event in tracer.events(taxonomy.SIM_FIRE)
        ]
        assert fired == [(1.0, "one"), (2.0, "two")]

    def test_sim_fire_excluded_by_default(self):
        sim = Simulator()
        tracer = Tracer(enabled=True)
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None, label="one")
        sim.run()
        assert len(tracer) == 0

    def test_disabled_tracer_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(exclude=frozenset())
        sim.tracer = tracer
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(tracer) == 0

    def test_tracer_clock_follows_sim(self):
        sim = Simulator()
        tracer = Tracer()
        sim.tracer = tracer
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert tracer.clock is not None
        assert tracer.clock() == 5.0


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(42), SeededRng(42)
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a, b = SeededRng(1), SeededRng(2)
        assert [a.random() for _ in range(20)] != [
            b.random() for _ in range(20)
        ]

    def test_fork_is_deterministic(self):
        a, b = SeededRng(42), SeededRng(42)
        fa, fb = a.fork("x"), b.fork("x")
        assert [fa.random() for _ in range(10)] == [
            fb.random() for _ in range(10)
        ]

    def test_forks_are_distinct(self):
        rng = SeededRng(42)
        f1, f2 = rng.fork("x"), rng.fork("x")
        assert [f1.random() for _ in range(10)] != [
            f2.random() for _ in range(10)
        ]

    def test_zipf_index_in_range(self):
        rng = SeededRng(1)
        for _ in range(200):
            assert 0 <= rng.zipf_index(7, 1.2) < 7

    def test_zipf_skew_prefers_low_indices(self):
        rng = SeededRng(1)
        draws = [rng.zipf_index(10, 1.5) for _ in range(2000)]
        assert draws.count(0) > draws.count(9)

    def test_zipf_zero_skew_uniformish(self):
        rng = SeededRng(1)
        draws = [rng.zipf_index(4, 0.0) for _ in range(4000)]
        for value in range(4):
            assert 800 < draws.count(value) < 1200

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(1).zipf_index(0)

    def test_exponential_positive_with_roughly_right_mean(self):
        rng = SeededRng(3)
        draws = [rng.exponential(10.0) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert 9.0 < sum(draws) / len(draws) < 11.0

    def test_bernoulli_extremes(self):
        rng = SeededRng(4)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))
