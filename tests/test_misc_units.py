"""Unit tests closing smaller coverage gaps across the library."""

import pytest

from repro import (
    FragmentedDatabase,
    RequestStatus,
    TransactionSpec,
    scripted_body,
)
from repro.cc.history import (
    CommittedTxn,
    HistoryRecorder,
    InstallRecord,
    ReadObservation,
    WriteRecord,
)
from repro.core.transaction import RequestTracker
from repro.errors import DesignError
from repro.net.message import Message
from repro.cc.ops import Write


class TestHistoryRecorder:
    def make_recorder(self):
        recorder = HistoryRecorder()
        for i, (frag, seq) in enumerate([("F1", 0), ("F1", 1), ("F2", 0)]):
            recorder.record_commit(
                CommittedTxn(
                    txn_id=f"T{i}",
                    agent="ag",
                    fragment=frag,
                    node="A",
                    commit_time=float(i),
                    stream_seq=seq,
                    kind="update",
                    writes=[WriteRecord(f"o{frag}", seq + 1, i)],
                )
            )
        recorder.record_commit(
            CommittedTxn(
                txn_id="R0",
                agent="reader",
                fragment=None,
                node="B",
                commit_time=5.0,
                stream_seq=None,
                kind="readonly",
                reads=[ReadObservation("oF1", "T0", 1)],
            )
        )
        return recorder

    def test_updates_of_fragment_ordered(self):
        recorder = self.make_recorder()
        updates = recorder.updates_of_fragment("F1")
        assert [t.txn_id for t in updates] == ["T0", "T1"]

    def test_readonly_excluded_from_updates(self):
        recorder = self.make_recorder()
        assert recorder.updates_of_fragment("F2")[0].txn_id == "T2"
        assert all(
            t.kind == "update" for t in recorder.updates_of_fragment("F1")
        )

    def test_version_order(self):
        recorder = self.make_recorder()
        order = recorder.version_order()
        assert order["oF1"] == [(1, "T0"), (2, "T1")]

    def test_lookup_and_counters(self):
        recorder = self.make_recorder()
        assert recorder.transaction("T1").stream_seq == 1
        with pytest.raises(KeyError):
            recorder.transaction("ghost")
        assert recorder.commit_count == 4
        assert recorder.update_count == 3

    def test_installs_at(self):
        recorder = self.make_recorder()
        recorder.record_install(InstallRecord("B", "T0", "F1", 0, 1.0))
        recorder.record_install(InstallRecord("C", "T0", "F1", 0, 1.0))
        assert len(recorder.installs_at("B")) == 1

    def test_abort_and_rejection_logs(self):
        recorder = self.make_recorder()
        recorder.record_abort("T9", "deadlock")
        recorder.record_rejection("T10", "partitioned")
        assert recorder.aborted == [("T9", "deadlock")]
        assert recorder.rejected == [("T10", "partitioned")]


class TestRequestTracker:
    def make_tracker(self):
        spec = TransactionSpec("T1", "ag", scripted_body([]))
        return RequestTracker(spec, submit_time=10.0, node="A")

    def test_finish_is_idempotent(self):
        tracker = self.make_tracker()
        tracker.finish(RequestStatus.COMMITTED, 15.0, result="first")
        tracker.finish(RequestStatus.ABORTED, 20.0, reason="too late")
        assert tracker.status is RequestStatus.COMMITTED
        assert tracker.result == "first"
        assert tracker.latency == 5.0

    def test_on_done_fires_on_finish(self):
        tracker = self.make_tracker()
        seen = []
        tracker.on_done = seen.append
        tracker.finish(RequestStatus.REJECTED, 11.0, reason="no")
        assert seen == [tracker]
        assert not tracker.succeeded

    def test_latency_none_while_pending(self):
        tracker = self.make_tracker()
        assert tracker.latency is None


class TestScriptedBody:
    def test_unknown_action_rejected(self):
        body = scripted_body([("x", "obj")])
        gen = body(None)
        with pytest.raises(ValueError):
            next(gen)

    def test_collect_captures_reads(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 42})
        collected = []
        db.submit_readonly(
            "ag", scripted_body([("r", "x")], collect=collected), reads=["x"]
        )
        db.quiesce()
        assert collected == [("x", 42)]


class TestMessage:
    def test_in_flight_time(self):
        message = Message("A", "B", "k", None, sent_at=3.0)
        assert message.in_flight_time is None
        message.delivered_at = 7.5
        assert message.in_flight_time == 4.5

    def test_ids_unique(self):
        a = Message("A", "B", "k", None)
        b = Message("A", "B", "k", None)
        assert a.msg_id != b.msg_id


class TestReplicationMoveGuard:
    def test_move_to_non_replicating_node_rejected(self):
        from repro.core.movement import MoveWithDataProtocol

        db = FragmentedDatabase(
            ["A", "B", "C"], movement=MoveWithDataProtocol()
        )
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.set_replication("F", ["A", "B"])
        db.load({"x": 0})
        db.finalize()
        with pytest.raises(DesignError):
            db.move_agent("ag", "C")
        db.move_agent("ag", "B", transport_delay=1.0)  # allowed
        db.quiesce()


class TestAvailabilityStats:
    def test_mean_latency_and_counts(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()

        def setx(_ctx):
            yield Write("x", 1)

        db.submit_update("ag", setx, writes=["x"])
        db.quiesce()
        stats = db.availability_stats()
        assert stats.submitted == 1
        assert stats.mean_latency == 0.0
        assert stats.availability == 1.0

    def test_empty_system_fully_available(self):
        db = FragmentedDatabase(["A"])
        assert db.availability_stats().availability == 1.0
