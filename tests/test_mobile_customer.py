"""The Section 2/4.4 mobile customer: the bank card is the token.

"Consider the card that a bank customer uses to identify himself to an
automatic teller.  Whoever owns the card is authorized to perform
banking operations on the corresponding account" (§3.1) — and §4.4.2A's
magnetic-strip discussion: "copier cards store the number of copies ...
These cards fit our model exactly.  As the agent moves, it carries with
it a copy of the fragment it controls."

A customer banks at branch A, drives to branch B (their ACTIVITY
fragment travelling on the card), and keeps banking — even while B is
partitioned from the rest of the bank.  The central office folds
everything once connectivity allows.
"""

from repro import FragmentedDatabase, MoveWithDataProtocol
from repro.workloads import BankingWorkload


class TestMobileCustomer:
    def make(self):
        db = FragmentedDatabase(
            ["HQ", "BRANCH-A", "BRANCH-B"],
            movement=MoveWithDataProtocol(),
        )
        bank = BankingWorkload(
            db,
            accounts={"00001": 500.0},
            central_node="HQ",
            owners={"00001": [("carla", "BRANCH-A")]},
            view_mode="own",
        )
        db.finalize()
        return db, bank

    def test_banking_continues_across_branches(self):
        db, bank = self.make()
        w1 = bank.withdraw("00001", 100.0)
        db.quiesce()
        assert w1.result[0] == "granted"
        # Carla drives to branch B; her card carries the ACTIVITY data.
        db.move_agent("cust:carla", "BRANCH-B", transport_delay=5.0)
        db.quiesce()
        w2 = bank.withdraw("00001", 100.0)
        db.quiesce()
        assert w2.result[0] == "granted"
        assert bank.balance_at("00001", "HQ") == 300.0
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_card_view_correct_even_when_branch_is_partitioned(self):
        db, bank = self.make()
        bank.withdraw("00001", 400.0)
        db.quiesce()
        db.move_agent("cust:carla", "BRANCH-B", transport_delay=5.0)
        db.quiesce()
        # B severed from the rest — but the card carried the activity
        # totals, so the local view knows only $100 remains...
        db.partitions.partition_now([["BRANCH-B"], ["HQ", "BRANCH-A"]])
        over = bank.withdraw("00001", 200.0)
        db.run(until=db.sim.now + 10)
        assert over.result[0] == "refused"  # no stale-view overdraft
        ok = bank.withdraw("00001", 50.0)
        db.run(until=db.sim.now + 10)
        assert ok.result[0] == "granted"
        db.partitions.heal_now()
        db.quiesce()
        assert bank.balance_at("00001", "HQ") == 50.0
        assert not bank.stats.letters  # no overdraft, no fines
        assert db.mutual_consistency().consistent

    def test_requests_rejected_while_card_in_transit(self):
        db, bank = self.make()
        db.move_agent("cust:carla", "BRANCH-B", transport_delay=30.0)
        tracker = bank.withdraw("00001", 10.0)
        db.run(until=5)
        assert tracker.status.value == "rejected"  # card is in the car
        db.quiesce()
        follow_up = bank.withdraw("00001", 10.0)
        db.quiesce()
        assert follow_up.succeeded
