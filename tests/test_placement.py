"""Rendezvous replica placement: determinism and minimal reshuffle.

``FragmentedDatabase._assign_replicas`` places a fragment's ``k``
replicas by rendezvous hashing over (fragment, node) pairs.  The
property that makes rendezvous the right tool for *online* membership:
growing the cluster by one node moves at most one replica per fragment
(the newcomer either scores into the top ``k - 1`` or nothing changes),
and the agent's home never moves at all.  A modulo-style placement
would reshuffle almost every fragment on every cluster change, turning
each node addition into a cluster-wide resync.
"""

from hypothesis import given, settings, strategies as st

from repro import FragmentedDatabase

FRAGMENTS = ["F0", "F1", "F2", "ACCOUNTS", "warehouse-7"]


@st.composite
def clusters(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    names = [f"N{i}" for i in range(n)]
    k = draw(st.integers(min_value=2, max_value=n))
    return names, k


def placements(names, k, home):
    db = FragmentedDatabase(names)
    return {
        fragment: db._assign_replicas(fragment, home, k)
        for fragment in FRAGMENTS
    }


class TestRendezvousPlacement:
    @given(clusters())
    @settings(max_examples=50)
    def test_deterministic_and_home_anchored(self, cluster):
        names, k = cluster
        first = placements(names, k, home=names[0])
        second = placements(list(reversed(names)), k, home=names[0])
        for fragment, replicas in first.items():
            assert len(replicas) == k
            assert names[0] in replicas  # home always a member
            assert replicas <= set(names)
            # Placement is a pure function of the (fragment, node)
            # pairs — insertion order of the cluster is irrelevant.
            assert second[fragment] == replicas

    @given(clusters())
    @settings(max_examples=50)
    def test_adding_a_node_moves_at_most_one_replica(self, cluster):
        names, k = cluster
        before = placements(names, k, home=names[0])
        after = placements(names + ["NX"], k, home=names[0])
        for fragment in FRAGMENTS:
            lost = before[fragment] - after[fragment]
            gained = after[fragment] - before[fragment]
            assert len(lost) <= 1
            assert gained <= {"NX"}  # only the newcomer can displace
            assert names[0] in after[fragment]  # the home never moves
