"""Tests for the strict-2PL local scheduler."""

import pytest

from repro.cc import (
    LocalScheduler,
    Read,
    TxnOutcome,
    Write,
    is_conflict_serializable,
)
from repro.errors import SimulationError, TransactionAborted
from repro.sim import Simulator
from repro.storage import ObjectStore, Version


def make_scheduler(initial=None, action_delay=0.0):
    sim = Simulator()
    store = ObjectStore("n")
    store.load({"x": 0, "y": 0, "z": 0, **(initial or {})})
    sched = LocalScheduler("n", store, sim=sim, action_delay=action_delay)
    return sim, store, sched


def transfer(src, dst, amount):
    def body(_ctx):
        a = yield Read(src)
        b = yield Read(dst)
        yield Write(src, a - amount)
        yield Write(dst, b + amount)
        return "done"

    return body


class TestBasicExecution:
    def test_commit_applies_writes(self):
        sim, store, sched = make_scheduler({"x": 10, "y": 0})
        outcomes = []
        sched.submit(
            "T1",
            transfer("x", "y", 3),
            on_done=lambda h, o, e: outcomes.append(o),
        )
        sim.run()
        assert outcomes == [TxnOutcome.COMMITTED]
        assert store.read("x") == 7
        assert store.read("y") == 3

    def test_result_captured(self):
        sim, store, sched = make_scheduler()
        results = []
        sched.submit(
            "T1",
            transfer("x", "y", 1),
            on_done=lambda h, o, e: results.append(h.result),
        )
        sim.run()
        assert results == ["done"]

    def test_read_your_own_write(self):
        sim, store, sched = make_scheduler({"x": 1})
        seen = []

        def body(_ctx):
            yield Write("x", 42)
            value = yield Read("x")
            seen.append(value)

        sched.submit("T1", body)
        sim.run()
        assert seen == [42]

    def test_deferred_writes_not_visible_before_commit(self):
        sim, store, sched = make_scheduler({"x": 1})

        def body(_ctx):
            yield Write("x", 99)
            # Store still has the committed value mid-transaction.
            assert store.read("x") == 1
            yield Read("y")

        sched.submit("T1", body)
        sim.run()
        assert store.read("x") == 99

    def test_version_numbers_increment(self):
        sim, store, sched = make_scheduler({"x": 0})
        for i in range(3):
            sched.submit(f"T{i}", transfer("x", "y", 1))
        sim.run()
        assert store.read_version("x").version_no == 3
        assert store.read_version("x").writer == "T2"

    def test_body_abort_propagates(self):
        sim, store, sched = make_scheduler()
        outcomes = []

        def body(_ctx):
            yield Write("x", 5)
            raise TransactionAborted("T1", "changed my mind")

        sched.submit("T1", body, on_done=lambda h, o, e: outcomes.append(o))
        sim.run()
        assert outcomes == [TxnOutcome.ABORTED]
        assert store.read("x") == 0  # buffered write discarded

    def test_duplicate_txn_id_rejected(self):
        sim, store, sched = make_scheduler(action_delay=1.0)
        sched.submit("T1", transfer("x", "y", 1))
        with pytest.raises(SimulationError):
            sched.submit("T1", transfer("x", "y", 1))

    def test_unknown_op_rejected(self):
        sim, store, sched = make_scheduler()

        def body(_ctx):
            yield "not an op"

        with pytest.raises(SimulationError):
            sched.submit("T1", body)

    def test_reads_record_versions(self):
        sim, store, sched = make_scheduler({"x": 5})
        handles = []
        sched.submit(
            "T1", transfer("x", "y", 1), on_done=lambda h, o, e: handles.append(h)
        )
        sim.run()
        (handle,) = handles
        assert handle.read_set == ["x", "y"]
        assert handle.reads[0][1].writer == "@init"


class TestBlockingAndInterleaving:
    def test_writer_blocks_reader_until_commit(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)
        order = []

        def writer(_ctx):
            yield Write("x", 1)
            yield Write("y", 1)
            order.append("writer-done")

        def reader(_ctx):
            value = yield Read("x")
            order.append(("reader-saw", value))

        sched.submit("W", writer)
        sched.submit("R", reader)
        sim.run()
        assert order == ["writer-done", ("reader-saw", 1)]

    def test_concurrent_transfers_stay_serializable(self):
        sim, store, sched = make_scheduler(
            {"a": 100, "b": 100, "c": 100}, action_delay=1.0
        )
        sched.record_actions = True
        sched.submit("T1", transfer("a", "b", 10))
        sched.submit("T2", transfer("b", "c", 20))
        sched.submit("T3", transfer("c", "a", 30))
        sim.run()
        # Money conserved regardless of commit/abort mix.
        total = store.read("a") + store.read("b") + store.read("c")
        assert total == 300
        committed = [
            a for a in sched.action_history
        ]  # history excludes aborted-after-the-fact effects; the
        # conflict graph over it must still be acyclic.
        assert is_conflict_serializable(committed)

    def test_deadlock_detected_and_victim_aborted(self):
        sim, store, sched = make_scheduler({"x": 0, "y": 0}, action_delay=1.0)
        outcomes = {}

        def t1(_ctx):
            yield Write("x", 1)
            yield Write("y", 1)

        def t2(_ctx):
            yield Write("y", 2)
            yield Write("x", 2)

        sched.submit("T1", t1, on_done=lambda h, o, e: outcomes.update({"T1": o}))
        sched.submit("T2", t2, on_done=lambda h, o, e: outcomes.update({"T2": o}))
        sim.run()
        assert sched.deadlocks >= 1
        assert sorted(outcomes.values(), key=lambda o: o.value) == [
            TxnOutcome.ABORTED,
            TxnOutcome.COMMITTED,
        ]
        # The survivor's writes applied consistently.
        assert store.read("x") == store.read("y")

    def test_three_way_upgrade_deadlock_resolved(self):
        sim, store, sched = make_scheduler(
            {"x": 0, "g1": 0, "g2": 0, "g3": 0}, action_delay=1.0
        )
        outcomes = []

        def body(gate):
            def inner(_ctx):
                value = yield Read("x")
                yield Read(gate)
                yield Write("x", value + 1)

            return inner

        for i, gate in enumerate(["g1", "g2", "g3"]):
            sched.submit(
                f"T{i}", body(gate), on_done=lambda h, o, e: outcomes.append(o)
            )
        sim.run()
        assert len(outcomes) == 3
        assert TxnOutcome.COMMITTED in outcomes
        assert not sched.active  # nothing stuck

    def test_chain_of_waiters_drains(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)
        done = []
        for i in range(6):
            sched.submit(
                f"T{i}",
                transfer("x", "y", 1),
                on_done=lambda h, o, e: done.append(o),
            )
        sim.run()
        # Six S->X upgraders on one hot object: upgrade deadlocks abort
        # all but the survivors (clients would retry).  What matters is
        # that every transaction reached a terminal state and the
        # scheduler fully drained.
        assert len(done) == 6
        assert done.count(TxnOutcome.COMMITTED) >= 1
        assert not sched.active


class TestQuasiTransactions:
    def test_quasi_installs_preassigned_versions(self):
        sim, store, sched = make_scheduler({"x": 0, "y": 0})
        version_x = Version(10, "remoteT", 7, 3.0)
        version_y = Version(20, "remoteT", 7, 3.0)
        sched.submit_quasi("q1", [("x", version_x), ("y", version_y)])
        sim.run()
        assert store.read_version("x") == version_x
        assert store.read_version("y") == version_y

    def test_quasi_blocks_behind_reader_then_installs(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)
        seen = []

        def reader(_ctx):
            value = yield Read("x")
            yield Read("y")  # keeps the S lock held for a while
            seen.append(value)

        sched.submit("R", reader)
        sched.submit_quasi("q1", [("x", Version(5, "rT", 1, 1.0))])
        sim.run()
        assert seen == [0]  # reader saw the pre-install value
        assert store.read("x") == 5

    def test_quasi_atomicity_no_partial_reads(self):
        sim, store, sched = make_scheduler({"x": 0, "y": 0}, action_delay=1.0)
        observations = []

        def reader(_ctx):
            a = yield Read("x")
            b = yield Read("y")
            observations.append((a, b))

        sched.submit_quasi(
            "q1",
            [("x", Version(1, "rT", 1, 1.0)), ("y", Version(1, "rT", 1, 1.0))],
        )
        sched.submit("R", reader)
        sim.run()
        assert observations[0] in [(0, 0), (1, 1)]  # never torn


class TestExternalLocks:
    def test_all_or_nothing_grant(self):
        sim, store, sched = make_scheduler({"x": 0, "y": 0})
        assert sched.try_lock_external("rl:1", ["x", "y"])
        holders = sched.locks.holders_of("x")
        assert "rl:1" in holders

    def test_bounce_when_exclusively_held(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)

        def writer(_ctx):
            yield Write("x", 1)
            yield Read("y")  # keeps the X lock held across sim time

        sched.submit("W", writer)  # X on x taken by the first action
        assert not sched.try_lock_external("rl:1", ["x"])
        # Nothing was queued: the probe must leave no residue.
        assert sched.locks.queued_for("x") == []

    def test_bounce_when_writer_queued(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)

        def reader(_ctx):
            yield Read("x")
            yield Read("y")

        def writer(_ctx):
            yield Write("x", 1)

        sched.submit("R", reader)  # S on x
        sched.submit("W", writer)  # X queued behind R
        # Strict FIFO: an external probe must not overtake the queued X.
        assert not sched.try_lock_external("rl:1", ["x"])

    def test_release_external_wakes_waiters(self):
        sim, store, sched = make_scheduler({"x": 0}, action_delay=1.0)
        assert sched.try_lock_external("rl:1", ["x"])
        done = []
        sched.submit(
            "W", transfer("x", "y", 1), on_done=lambda h, o, e: done.append(o)
        )
        sim.run()
        assert done == []  # writer stuck behind the external S lock
        sched.release_external("rl:1")
        sim.run()
        assert done == [TxnOutcome.COMMITTED]

    def test_external_shared_with_local_readers(self):
        sim, store, sched = make_scheduler({"x": 0})
        assert sched.try_lock_external("rl:1", ["x"])
        seen = []

        def reader(_ctx):
            seen.append((yield Read("x")))

        sched.submit("R", reader)
        sim.run()
        assert seen == [0]


class TestApplyVeto:
    def test_apply_hook_can_veto_commit(self):
        sim = Simulator()
        store = ObjectStore("n")
        store.load({"x": 0})

        def veto(handle):
            raise TransactionAborted(handle.txn_id, "policy says no")

        sched = LocalScheduler("n", store, sim=sim, apply_writes=veto)
        outcomes = []

        def body(_ctx):
            yield Write("x", 1)

        sched.submit("T1", body, on_done=lambda h, o, e: outcomes.append((o, e)))
        sim.run()
        assert outcomes[0][0] is TxnOutcome.ABORTED
        assert "policy says no" in str(outcomes[0][1])
        assert store.read("x") == 0
        assert not sched.active

    def test_remote_version_override(self):
        sim, store, sched = make_scheduler({"x": 0})
        pinned = Version(77, "far-away", 9, 1.0)
        seen = []

        def body(_ctx):
            seen.append((yield Read("x")))

        sched.submit("T1", body, meta={"remote_versions": {"x": pinned}})
        sim.run()
        assert seen == [77]


class TestActionDelayValidation:
    def test_action_delay_without_sim_rejected(self):
        store = ObjectStore("n")
        with pytest.raises(SimulationError):
            LocalScheduler("n", store, sim=None, action_delay=1.0)
