"""Tests for single-site conflict-serializability checking."""

import pytest
from hypothesis import given, strategies as st

from repro.cc.serializability import (
    ActionRecord,
    conflict_graph,
    equivalent_serial_order,
    is_conflict_serializable,
)


def history(*triples):
    return [
        ActionRecord(txn, kind, obj, seq)
        for seq, (txn, kind, obj) in enumerate(triples)
    ]


class TestConflictGraph:
    def test_serial_history_serializable(self):
        actions = history(
            ("T1", "r", "x"), ("T1", "w", "x"),
            ("T2", "r", "x"), ("T2", "w", "x"),
        )
        assert is_conflict_serializable(actions)
        assert equivalent_serial_order(actions) == ["T1", "T2"]

    def test_classic_nonserializable_interleaving(self):
        # T1: r(x) ... w(y); T2: r(y) ... w(x) interleaved both ways.
        actions = history(
            ("T1", "r", "x"),
            ("T2", "r", "y"),
            ("T2", "w", "x"),
            ("T1", "w", "y"),
        )
        assert not is_conflict_serializable(actions)
        with pytest.raises(ValueError):
            equivalent_serial_order(actions)

    def test_read_read_no_conflict(self):
        actions = history(
            ("T1", "r", "x"), ("T2", "r", "x"), ("T1", "r", "x")
        )
        graph = conflict_graph(actions)
        assert graph.edges == []

    def test_write_write_conflict_ordered(self):
        actions = history(("T1", "w", "x"), ("T2", "w", "x"))
        graph = conflict_graph(actions)
        assert graph.has_edge("T1", "T2")
        assert not graph.has_edge("T2", "T1")

    def test_same_txn_no_self_edge(self):
        actions = history(("T1", "w", "x"), ("T1", "r", "x"))
        graph = conflict_graph(actions)
        assert not graph.has_edge("T1", "T1")

    def test_disjoint_objects_any_order(self):
        actions = history(
            ("T1", "w", "x"), ("T2", "w", "y"), ("T1", "w", "x")
        )
        order = equivalent_serial_order(actions)
        assert set(order) == {"T1", "T2"}


@st.composite
def random_histories(draw):
    n_txns = draw(st.integers(min_value=1, max_value=4))
    actions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_txns - 1),
                st.sampled_from(["r", "w"]),
                st.sampled_from(["x", "y", "z"]),
            ),
            max_size=16,
        )
    )
    return [
        ActionRecord(f"T{t}", kind, obj, seq)
        for seq, (t, kind, obj) in enumerate(actions)
    ]


class TestProperties:
    @given(random_histories())
    def test_serial_order_respects_all_conflicts(self, actions):
        if not is_conflict_serializable(actions):
            return
        order = equivalent_serial_order(actions)
        position = {txn: i for i, txn in enumerate(order)}
        by_obj = {}
        for action in actions:
            by_obj.setdefault(action.obj, []).append(action)
        for series in by_obj.values():
            for i, first in enumerate(series):
                for second in series[i + 1 :]:
                    if first.txn == second.txn:
                        continue
                    if first.kind == "w" or second.kind == "w":
                        assert position[first.txn] < position[second.txn]

    @given(random_histories())
    def test_single_transaction_always_serializable(self, actions):
        solo = [a for a in actions if a.txn == "T0"]
        assert is_conflict_serializable(solo)
