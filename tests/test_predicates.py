"""Tests for consistency predicates (Section 4.3 classification)."""

from repro.core.fragment import Fragment, FragmentCatalog
from repro.core.predicates import ConsistencyPredicate, PredicateSuite
from repro.storage.store import ObjectStore


def make_catalog():
    catalog = FragmentCatalog()
    catalog.add(Fragment("F1", objects=["a", "b"]))
    catalog.add(Fragment("F2", objects=["c"]))
    return catalog


def make_store(values):
    store = ObjectStore("n")
    store.load(values)
    return store


class TestClassification:
    def test_single_fragment(self):
        catalog = make_catalog()
        store = make_store({"a": 1, "b": 2, "c": 3})
        predicate = ConsistencyPredicate(
            "p", ["a", "b"], lambda values: True
        )
        assert predicate.classify(catalog, store) == "single"

    def test_multi_fragment(self):
        catalog = make_catalog()
        store = make_store({"a": 1, "c": 3})
        predicate = ConsistencyPredicate("p", ["a", "c"], lambda values: True)
        assert predicate.classify(catalog, store) == "multi"

    def test_dynamic_object_list(self):
        catalog = make_catalog()
        store = make_store({"a": 1, "b": 2, "c": 3})
        predicate = ConsistencyPredicate(
            "p",
            lambda s: [name for name in s.names if name != "c"],
            lambda values: True,
        )
        assert predicate.resolve_objects(store) == ["a", "b"]
        assert predicate.classify(catalog, store) == "single"


class TestEvaluation:
    def test_holds_and_violates(self):
        store = make_store({"a": 5})
        good = ConsistencyPredicate("ok", ["a"], lambda v: v["a"] >= 0)
        bad = ConsistencyPredicate("neg", ["a"], lambda v: v["a"] < 0)
        assert good.holds(store)
        assert not bad.holds(store)

    def test_suite_counts_by_class(self):
        catalog = make_catalog()
        suite = PredicateSuite(catalog)
        suite.add(
            ConsistencyPredicate("single-bad", ["a"], lambda v: False)
        )
        suite.add(
            ConsistencyPredicate("multi-bad", ["a", "c"], lambda v: False)
        )
        suite.add(ConsistencyPredicate("fine", ["b"], lambda v: True))
        store = make_store({"a": 1, "b": 2, "c": 3})
        result = suite.evaluate(store)
        assert result.single == 1
        assert result.multi == 1
        assert result.total == 2
        assert len(result.details) == 2

    def test_suite_aggregates_over_stores(self):
        catalog = make_catalog()
        suite = PredicateSuite(catalog)
        suite.add(ConsistencyPredicate("bad", ["a"], lambda v: False))
        stores = [make_store({"a": 1}), make_store({"a": 2})]
        result = suite.evaluate_all(stores)
        assert result.single == 2

    def test_missing_objects_skipped(self):
        store = make_store({"a": 1})
        predicate = ConsistencyPredicate(
            "p", ["a", "ghost"], lambda values: "ghost" not in values
        )
        assert predicate.holds(store)

    def test_len(self):
        suite = PredicateSuite(make_catalog())
        assert len(suite) == 0
        suite.add(ConsistencyPredicate("p", ["a"], lambda v: True))
        assert len(suite) == 1
