"""Regression tests for partition/crash interleaving bugs.

Each scenario interleaves node crashes with partition episodes in a way
the seed implementation got wrong:

* ``heal_now``/scripted heals restored *every* link — including links
  cut by a different still-active episode and links taken down by a
  node crash.
* ``recover_node`` replayed the pre-crash link-state snapshot — links a
  partition severed *while the node was down* came back up mid-episode.

The fixed behaviour: a heal restores only the links partitions are
responsible for and whose every claim has been released, never links
touching a crashed node; recovery recomputes link state against the
currently-active episodes.
"""

from repro import FragmentedDatabase, PartitionSpec
from repro.cc.ops import Read, Write


def make_db(nodes=("A", "B", "C"), **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    return db


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def up(db, a, b):
    return db.topology.link(a, b).up


class TestCrashDuringPartition:
    def test_heal_keeps_crashed_node_links_down(self):
        """A heal must not resurrect links owned by a crashed node."""
        db = make_db()
        db.fail_node("C")
        db.partitions.partition_now([["A"], ["B", "C"]])
        db.partitions.heal_now()
        assert up(db, "A", "B")  # partition-cut, restored
        assert not up(db, "A", "C")  # crash-downed, heal must not touch
        assert not up(db, "B", "C")
        db.recover_node("C")
        assert up(db, "A", "C")
        assert up(db, "B", "C")

    def test_crash_after_cut_then_heal_then_recover(self):
        """Partition owns a link, the endpoint crashes, heal happens
        during the downtime: the link stays down until recovery."""
        db = make_db()
        db.partitions.partition_now([["A"], ["B", "C"]])
        db.fail_node("C")
        db.partitions.heal_now()
        assert up(db, "A", "B")
        assert not up(db, "A", "C")  # endpoint still crashed
        assert not up(db, "B", "C")
        db.recover_node("C")
        db.quiesce()
        assert up(db, "A", "C")
        assert up(db, "B", "C")

    def test_traffic_converges_after_crash_partition_heal_recover(self):
        db = make_db()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        db.fail_node("C")
        db.partitions.partition_now([["A"], ["B", "C"]])
        db.submit_update("ag", bump(), writes=["x"])
        db.run(until=db.sim.now + 5)
        db.partitions.heal_now()
        db.run(until=db.sim.now + 5)
        # C is still down: nothing may have been delivered to it.
        assert not db.nodes["C"].store.exists("x")
        db.recover_node("C")
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 2
        assert db.mutual_consistency().consistent


class TestOverlappingEpisodes:
    def test_first_heal_keeps_shared_links_down(self):
        """Two overlapping episodes share the A-C link; the first heal
        must only restore links no active episode still claims."""
        db = make_db()
        db.partitions.install(
            [
                PartitionSpec(10.0, 50.0, [["A"], ["B", "C"]], label="p1"),
                PartitionSpec(30.0, 80.0, [["A", "B"], ["C"]], label="p2"),
            ]
        )
        db.run(until=60.0)  # p1 healed, p2 still active
        assert up(db, "A", "B")  # only p1 claimed it
        assert not up(db, "A", "C")  # p2 still claims it
        assert not up(db, "B", "C")  # cut by p2, untouched by p1's heal
        db.run(until=90.0)  # p2 healed too
        assert up(db, "A", "C")
        assert up(db, "B", "C")

    def test_heal_now_clears_all_active_episodes(self):
        db = make_db()
        db.partitions.partition_now([["A"], ["B", "C"]])
        db.partitions.partition_now([["A", "B"], ["C"]])
        db.partitions.heal_now()
        for a, b in (("A", "B"), ("A", "C"), ("B", "C")):
            assert up(db, a, b)

    def test_messages_held_until_last_claim_released(self):
        db = make_db()
        db.partitions.install(
            [
                PartitionSpec(1.0, 10.0, [["A"], ["B", "C"]], label="p1"),
                PartitionSpec(5.0, 20.0, [["A", "B"], ["C"]], label="p2"),
            ]
        )
        db.sim.schedule_at(
            6.0,
            lambda: db.submit_update("ag", bump(), writes=["x"]),
            label="update mid-overlap",
        )
        db.run(until=12.0)  # p1 healed; A-C still severed by p2
        assert db.nodes["C"].store.read("x") == 0
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 1
        assert db.mutual_consistency().consistent


class TestRecoverDuringPartition:
    def test_recovery_respects_active_partition(self):
        """A partition formed while the node was down keeps its links
        severed after recovery (no stale pre-crash snapshot replay)."""
        db = make_db()
        db.fail_node("C")
        db.partitions.partition_now([["A", "B"], ["C"]])
        db.recover_node("C")
        assert not db.nodes["C"].down
        assert up(db, "A", "B")
        assert not up(db, "A", "C")  # still severed by the episode
        assert not up(db, "B", "C")
        db.partitions.heal_now()
        assert up(db, "A", "C")  # partition adopted + restored them
        assert up(db, "B", "C")

    def test_recovered_node_isolated_until_heal(self):
        db = make_db()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        db.fail_node("C")
        db.partitions.partition_now([["A", "B"], ["C"]])
        db.recover_node("C")
        db.submit_update("ag", bump(), writes=["x"])
        db.run(until=db.sim.now + 10)
        # The update committed on the majority side but must not have
        # crossed into C's group while the episode is active (C's WAL
        # replay restored only the pre-crash value).
        assert db.nodes["A"].store.read("x") == 2
        assert db.nodes["C"].store.read("x") == 1
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 2
        assert db.mutual_consistency().consistent

    def test_scripted_heal_restores_adopted_links(self):
        db = make_db()
        db.partitions.install(
            [PartitionSpec(5.0, 30.0, [["A", "B"], ["C"]], label="p")]
        )
        db.sim.schedule_at(2.0, lambda: db.fail_node("C"), label="crash C")
        db.sim.schedule_at(10.0, lambda: db.recover_node("C"), label="recover C")
        db.run(until=20.0)
        assert not up(db, "A", "C")
        assert not up(db, "B", "C")
        db.run(until=40.0)  # scripted heal at 30 restores adopted links
        assert up(db, "A", "C")
        assert up(db, "B", "C")
        db.quiesce()
        assert db.mutual_consistency().consistent


class TestAdoptAndHealWithCrashHeldLinks:
    """Direct coverage for ``PartitionManager.adopt``/``heal_now`` when
    links are simultaneously held down by crashes, partitions, and
    (via the fault injector) link flaps."""

    def test_adopt_requires_an_active_claim(self):
        db = make_db()
        db.topology.set_link_up("A", "B", False)
        db.partitions.adopt("A", "B")  # no claim: a no-op
        db.partitions.heal_now()
        assert not up(db, "A", "B")  # heal never touched the orphan link

    def test_adopt_transfers_restore_duty_to_heal(self):
        db = make_db()
        db.fail_node("C")
        db.partitions.partition_now([["A", "B"], ["C"]])
        db.recover_node("C")
        # Recovery left A-C/B-C down and adopted them under the active
        # claim; severs() reports the claim, heal restores the links.
        assert db.partitions.severs("A", "C")
        assert db.partitions.severs("B", "C")
        db.partitions.heal_now()
        assert up(db, "A", "C")
        assert up(db, "B", "C")

    def test_heal_now_skips_links_guarded_by_a_crash(self):
        db = make_db(nodes=("A", "B", "C", "D"))
        db.partitions.partition_now([["A", "B"], ["C", "D"]])
        db.fail_node("D")
        db.partitions.heal_now()
        # Partition-cut links with both endpoints alive come back; every
        # link touching the crashed node stays down even though the
        # partition owned some of them.
        assert up(db, "A", "C")
        assert up(db, "B", "C")
        for other in ("A", "B", "C"):
            assert not up(db, other, "D")
        db.recover_node("D")
        for other in ("A", "B", "C"):
            assert up(db, other, "D")

    def test_flap_up_during_partition_is_adopted_not_revived(self):
        """A link flap ending mid-partition must not punch a hole in the
        partition: the revive guard hands the link to the episode, and
        the eventual heal restores it."""
        from repro.net.faults import FaultPlan, LinkFlap

        db = make_db(
            faults=FaultPlan(flaps=(LinkFlap(5.0, "A", "C", 10.0),))
        )
        db.sim.schedule_at(
            8.0, lambda: db.partitions.partition_now([["A", "B"], ["C"]])
        )
        db.run(until=20.0)  # flap tried to come back up at 15
        assert not up(db, "A", "C")  # partition still severs it
        assert db.partitions.severs("A", "C")
        db.partitions.heal_now()
        assert up(db, "A", "C")
        db.quiesce()
        assert db.mutual_consistency().consistent

    def test_flap_up_during_crash_waits_for_recovery(self):
        from repro.net.faults import FaultPlan, LinkFlap

        db = make_db(
            faults=FaultPlan(flaps=(LinkFlap(5.0, "A", "C", 10.0),))
        )
        db.sim.schedule_at(8.0, lambda: db.fail_node("C"))
        db.run(until=20.0)
        assert not up(db, "A", "C")  # guard vetoed the flap's revive
        db.recover_node("C")
        assert up(db, "A", "C")
        db.quiesce()
        assert db.mutual_consistency().consistent

    def test_traffic_survives_adopted_flap_plus_crash(self):
        from repro.net.faults import FaultPlan, LinkFlap

        db = make_db(
            faults=FaultPlan(
                loss_rate=0.2,
                flaps=(LinkFlap(3.0, "B", "C", 8.0),),
            )
        )
        db.sim.schedule_at(
            5.0, lambda: db.partitions.partition_now([["A", "B"], ["C"]])
        )
        db.sim.schedule_at(6.0, lambda: db.submit_update("ag", bump(), writes=["x"]))
        db.sim.schedule_at(25.0, db.partitions.heal_now)
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 1
        assert db.mutual_consistency().consistent


class TestBatchInstallIdempotence:
    """A held batch arriving after anti-entropy already installed some
    of its members must skip those members, not re-install them."""

    def test_held_batch_overlapping_recovered_prefix(self):
        from repro import PipelineConfig

        db = make_db(pipeline=PipelineConfig(batch_size=2, batch_window=1.0))
        for _ in range(2):  # T1,T2: one batch, installed everywhere
            db.submit_update("ag", bump(), writes=["x"])
        db.run(until=2.0)
        assert all(n.store.read("x") == 2 for n in db.nodes.values())

        db.fail_node("B")  # volatile stream state gone; WAL keeps T1,T2
        db.sim.schedule_at(3.0, lambda: db.submit_update("ag", bump(), writes=["x"]))
        db.sim.schedule_at(3.5, lambda: db.submit_update("ag", bump(), writes=["x"]))
        db.run(until=6.0)  # T3,T4 batch delivered to C, held for B
        assert db.nodes["C"].store.read("x") == 4

        # A partition forms while B is down; when B recovers, the B-C
        # link comes back but A-B stays severed (the episode adopts it),
        # so the held batch stays held while anti-entropy runs via C.
        db.sim.schedule_at(7.0, lambda: db.partitions.partition_now([["A"], ["B", "C"]]))
        db.sim.schedule_at(8.0, lambda: db.recover_node("B"))
        db.run(until=15.0)
        assert db.nodes["B"].store.read("x") == 4  # T3,T4 via C's archive
        assert db.network.held_count() > 0  # the original batch, still held

        # Heal: the held {T3,T4} batch finally reaches B — every member
        # is already installed and per-qt admission must drop both.
        db.sim.schedule_at(20.0, db.partitions.heal_now)
        db.quiesce()

        assert db.nodes["B"].store.read("x") == 4
        installs = [
            r.quasi.source_txn
            for r in db.nodes["B"].wal.records()
            if r.kind == "install"
        ]
        assert len(installs) == len(set(installs))  # no double installs
        assert db.mutual_consistency().consistent

        # The stream cursor survived the duplicate batch: later updates
        # still install in order everywhere.
        db.submit_update("ag", bump(), writes=["x"])
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        assert all(n.store.read("x") == 6 for n in db.nodes.values())
        assert db.mutual_consistency().consistent
