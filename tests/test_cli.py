"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_scenario_prints_table(self, capsys):
        assert main(["scenario", "--amount", "200"]) == 0
        out = capsys.readouterr().out
        assert "withdrawal at A" in out
        assert "granted" in out
        assert "-125" in out

    def test_scenario_consistent_amount(self, capsys):
        assert main(["scenario", "--amount", "100"]) == 0
        out = capsys.readouterr().out
        assert "overdraft letters    0" in out

    def test_theorem_small_run(self, capsys):
        assert main(["theorem", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "forests" in out
        assert "cyclic" in out

    def test_spectrum_custom_duration(self, capsys):
        assert main(["spectrum", "--seed", "3", "--duration", "50"]) == 0
        out = capsys.readouterr().out
        assert "fa-unrestricted" in out
        assert "mutual-exclusion" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_structure(self):
        parser = build_parser()
        assert parser.prog == "repro"

    def test_scenario_trace_writes_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["scenario", "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        from repro.obs import summarize_trace

        summary = summarize_trace(path)
        assert summary.count("txn.commit") > 0
        assert summary.count("partition.cut") == 1

    def test_metrics_snapshot_run(self, capsys):
        assert main(["metrics", "--seed", "3", "--duration", "50"]) == 0
        out = capsys.readouterr().out
        assert "net.messages_sent" in out
        assert "txn.committed" in out
        assert "net.delivery_delay" in out

    def test_metrics_summarize_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["scenario", "--trace", path]) == 0
        capsys.readouterr()
        assert main(["metrics", "--summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "message.send" in out

    def test_partial_bench_reduced_run(self, capsys, tmp_path):
        path = str(tmp_path / "bench.json")
        assert main([
            "partial-bench", "--nodes", "6", "--fragments", "3",
            "--updates", "30", "--factors", "2", "3", "--json", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "E19" in out
        assert "all gates OK" in out
        # The record it just wrote gates cleanly (and, being fully
        # deterministic, matches an immediate re-run exactly).
        assert main([
            "partial-bench", "--nodes", "6", "--fragments", "3",
            "--updates", "30", "--factors", "2", "3", "--check", path,
        ]) == 0

    def test_chaos_with_partial_replication(self, capsys):
        assert main([
            "chaos", "--seed", "5", "--protocol", "with-seqno",
            "--replication-factor", "2", "--quorum-reads", "3",
            "--bursts", "0", "--flaps", "0", "--crashes", "0",
            "--partitions", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "with-seqno" in out
        assert "OK" in out


class TestObservabilityCommands:
    def trace_file(self, tmp_path, capsys):
        """Produce a small traced chaos run to feed the dashboard."""
        path = str(tmp_path / "trace.jsonl")
        assert main([
            "chaos", "--seed", "3", "--protocol", "with-seqno",
            "--bursts", "0", "--flaps", "0", "--crashes", "1",
            "--partitions", "0", "--trace", path,
        ]) == 0
        capsys.readouterr()
        return path

    def test_metrics_watch_prints_tick_blocks(self, capsys):
        assert main([
            "metrics", "--seed", "7", "--duration", "40", "--watch", "25",
        ]) == 0
        out = capsys.readouterr().out
        assert "t=" in out
        assert "metrics snapshot" in out

    def test_metrics_watch_rejects_nonpositive_tick(self, capsys):
        assert main(["metrics", "--watch", "0"]) == 1
        assert "must be positive" in capsys.readouterr().err

    def test_metrics_timeline_out_writes_jsonl(self, capsys, tmp_path):
        out_path = str(tmp_path / "tl.jsonl")
        assert main([
            "metrics", "--seed", "7", "--duration", "40", "--watch", "25",
            "--timeline-out", out_path,
        ]) == 0
        assert "timeline records written" in capsys.readouterr().out
        from repro.obs.timeline import load_jsonl

        loaded = load_jsonl(out_path)
        assert loaded["counter"]  # sampled something

    def test_dashboard_requires_a_mode(self, capsys, tmp_path):
        path = self.trace_file(tmp_path, capsys)
        assert main(["dashboard", path]) == 1
        assert "--html" in capsys.readouterr().err

    def test_dashboard_html_renders_the_trace(self, capsys, tmp_path):
        path = self.trace_file(tmp_path, capsys)
        html_path = str(tmp_path / "dash.html")
        assert main(["dashboard", path, "--html", html_path]) == 0
        assert "dashboard written" in capsys.readouterr().out
        with open(html_path, encoding="utf-8") as handle:
            html = handle.read()
        assert "<svg" in html
        assert "viz-root" in html

    def test_dashboard_html_missing_trace_errors(self, capsys, tmp_path):
        assert main([
            "dashboard", str(tmp_path / "absent.jsonl"),
            "--html", str(tmp_path / "dash.html"),
        ]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_chaos_table_has_availability_columns(self, capsys):
        assert main([
            "chaos", "--seed", "11", "--protocol", "with-seqno",
            "--bursts", "0", "--flaps", "0", "--crashes", "0",
            "--partitions", "0", "--kill-agent", "1", "--failover",
        ]) == 0
        out = capsys.readouterr().out
        assert "avail" in out
        assert "worst-win" in out
        assert "unavailability by cause:" in out

    def test_availability_accounting_bench_reduced_run(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "bench.json")
        assert main([
            "availability-accounting-bench", "--nodes", "4",
            "--fragments", "2", "--updates", "12", "--factor", "3",
            "--json", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "E21" in out
        assert "timeline deterministic across reruns: True" in out
        assert "all gates OK" in out
        # The record it just wrote gates cleanly against itself.
        assert main([
            "availability-accounting-bench", "--nodes", "4",
            "--fragments", "2", "--updates", "12", "--factor", "3",
            "--check", path,
        ]) == 0
