"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_scenario_prints_table(self, capsys):
        assert main(["scenario", "--amount", "200"]) == 0
        out = capsys.readouterr().out
        assert "withdrawal at A" in out
        assert "granted" in out
        assert "-125" in out

    def test_scenario_consistent_amount(self, capsys):
        assert main(["scenario", "--amount", "100"]) == 0
        out = capsys.readouterr().out
        assert "overdraft letters    0" in out

    def test_theorem_small_run(self, capsys):
        assert main(["theorem", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "forests" in out
        assert "cyclic" in out

    def test_spectrum_custom_duration(self, capsys):
        assert main(["spectrum", "--seed", "3", "--duration", "50"]) == 0
        out = capsys.readouterr().out
        assert "fa-unrestricted" in out
        assert "mutual-exclusion" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_structure(self):
        parser = build_parser()
        assert parser.prog == "repro"

    def test_scenario_trace_writes_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["scenario", "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        from repro.obs import summarize_trace

        summary = summarize_trace(path)
        assert summary.count("txn.commit") > 0
        assert summary.count("partition.cut") == 1

    def test_metrics_snapshot_run(self, capsys):
        assert main(["metrics", "--seed", "3", "--duration", "50"]) == 0
        out = capsys.readouterr().out
        assert "net.messages_sent" in out
        assert "txn.committed" in out
        assert "net.delivery_delay" in out

    def test_metrics_summarize_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["scenario", "--trace", path]) == 0
        capsys.readouterr()
        assert main(["metrics", "--summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "message.send" in out

    def test_partial_bench_reduced_run(self, capsys, tmp_path):
        path = str(tmp_path / "bench.json")
        assert main([
            "partial-bench", "--nodes", "6", "--fragments", "3",
            "--updates", "30", "--factors", "2", "3", "--json", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "E19" in out
        assert "all gates OK" in out
        # The record it just wrote gates cleanly (and, being fully
        # deterministic, matches an immediate re-run exactly).
        assert main([
            "partial-bench", "--nodes", "6", "--fragments", "3",
            "--updates", "30", "--factors", "2", "3", "--check", path,
        ]) == 0

    def test_chaos_with_partial_replication(self, capsys):
        assert main([
            "chaos", "--seed", "5", "--protocol", "with-seqno",
            "--replication-factor", "2", "--quorum-reads", "3",
            "--bursts", "0", "--flaps", "0", "--crashes", "0",
            "--partitions", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "with-seqno" in out
        assert "OK" in out
