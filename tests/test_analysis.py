"""Tests for the analysis layer: reports, metrics, the spectrum driver."""

from repro.analysis.metrics import correctness_summary
from repro.analysis.report import format_series, format_table
from repro.analysis.spectrum import (
    SPECTRUM_HEADERS,
    SpectrumConfig,
    run_fragments_agents,
    run_log_transform,
    run_mutual_exclusion,
    run_optimistic,
    run_spectrum,
    scenario_script,
)
from repro.core.control.unrestricted import UnrestrictedReadsStrategy


class TestReport:
    def test_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 2.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[1:3]}) >= 1

    def test_bool_and_float_formatting(self):
        table = format_table(["x"], [[True], [False], [1.23456]])
        assert "yes" in table
        assert "no" in table
        assert "1.235" in table

    def test_series(self):
        block = format_series("S", [(1, 2), (3, 4)], "in", "out")
        assert "in" in block and "out" in block


class TestSpectrumPieces:
    def small_config(self):
        return SpectrumConfig(
            nodes=("A", "B"),
            n_accounts=2,
            owners_per_account=2,
            partition_start=20.0,
            partition_end=60.0,
            partition_groups=(("A",), ("B",)),
            horizon=100.0,
            mean_interarrival=6.0,
            seed=3,
        )

    def test_script_shared_and_deterministic(self):
        config = self.small_config()
        assert scenario_script(config) == scenario_script(config)
        assert len(scenario_script(config)) > 0

    def test_fragments_agents_row(self):
        config = self.small_config()
        row = run_fragments_agents(
            config, UnrestrictedReadsStrategy(), "fa", view_mode="own"
        )
        assert row.submitted == len(scenario_script(config))
        assert row.availability == 1.0
        assert row.mutually_consistent
        assert row.fragmentwise_serializable

    def test_mutual_exclusion_row(self):
        config = self.small_config()
        row = run_mutual_exclusion(config)
        assert row.globally_serializable
        assert 0.0 < row.availability <= 1.0
        assert row.mutually_consistent

    def test_log_transform_row(self):
        config = self.small_config()
        row = run_log_transform(config)
        assert row.availability == 1.0
        assert row.mutually_consistent

    def test_optimistic_row(self):
        config = self.small_config()
        row = run_optimistic(config)
        assert row.mutually_consistent
        assert row.globally_serializable

    def test_full_spectrum_shape(self):
        """The Figure 1.1 claim, asserted."""
        rows = {r.system: r for r in run_spectrum(self.small_config())}
        assert len(rows) == 6
        # Free-for-all end: full availability.
        assert rows["fa-unrestricted"].availability == 1.0
        assert rows["fa-acyclic"].availability == 1.0
        assert rows["log-transform"].availability == 1.0
        # Conservative end loses availability during the partition.
        assert rows["mutual-exclusion"].availability < 1.0
        # Correctness guarantees: conservative end keeps GS.
        assert rows["mutual-exclusion"].globally_serializable
        assert rows["fa-read-locks"].globally_serializable
        assert rows["fa-acyclic"].globally_serializable
        # Everyone preserves replica convergence.
        assert all(r.mutually_consistent for r in rows.values())
        # Table renders.
        table = format_table(
            SPECTRUM_HEADERS, [r.as_tuple() for r in rows.values()]
        )
        assert "fa-unrestricted" in table


class TestCorrectnessSummary:
    def test_summary_over_clean_run(self):
        from repro import FragmentedDatabase
        from repro.cc.ops import Write

        db = FragmentedDatabase(["A", "B"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()

        def body(_ctx):
            yield Write("x", 1)

        db.submit_update("ag", body, writes=["x"])
        db.quiesce()
        summary = correctness_summary(db)
        assert summary.globally_serializable
        assert summary.fragmentwise_serializable
        assert summary.mutually_consistent
        assert summary.multi_fragment_violations == 0
        assert "GS=yes" in summary.as_flags()
