"""Deterministic edge cases of the Section 4.4.3 corrective protocol."""

from repro import CorrectiveMoveProtocol, FragmentedDatabase
from repro.cc.ops import Write


def make_db(nodes=("W", "X", "Y", "Z")):
    protocol = CorrectiveMoveProtocol()
    db = FragmentedDatabase(list(nodes), movement=protocol)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["p", "q"])
    db.load({"p": 0, "q": 0})
    db.finalize()
    return db, protocol


def setv(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


class TestCorrectiveEdges:
    def test_two_moves_two_epochs_orphans_from_both(self):
        """Orphans stranded behind two successive moves all reconcile."""
        db, protocol = make_db()
        # Epoch 0 at W: T1 trapped by a partition isolating W.
        db.sim.schedule_at(1, lambda: db.partitions.partition_now(
            [["W"], ["X", "Y", "Z"]]))
        db.sim.schedule_at(2, lambda: db.submit_update(
            "ag", setv("p", 1), writes=["p"], txn_id="T1"))
        # Move W -> X (epoch 1), update, then immediately X -> Y (epoch 2).
        db.sim.schedule_at(5, lambda: db.move_agent("ag", "X",
                                                    transport_delay=1))
        db.sim.schedule_at(10, lambda: db.submit_update(
            "ag", setv("q", 2), writes=["q"], txn_id="T2"))
        db.sim.schedule_at(15, lambda: db.move_agent("ag", "Y",
                                                     transport_delay=1))
        db.sim.schedule_at(20, lambda: db.submit_update(
            "ag", setv("q", 3), writes=["q"], txn_id="T3"))
        db.sim.schedule_at(60, db.partitions.heal_now)
        db.quiesce()
        token = db.agents["ag"].token_for("F")
        assert token.payload["epoch"] == 2
        assert db.mutual_consistency().consistent
        # T1's write of p survived (nothing newer wrote p): repackaged.
        for node in db.nodes.values():
            assert node.store.read("p") == 1
            assert node.store.read("q") == 3
        assert protocol.orphans_handled >= 1
        assert protocol.repackaged_count >= 1

    def test_forwarded_orphan_follows_a_moved_again_agent(self):
        """Rule B2's forward chases the agent across a second move."""
        db, protocol = make_db()
        db.sim.schedule_at(1, lambda: db.partitions.partition_now(
            [["W"], ["X", "Y", "Z"]]))
        db.sim.schedule_at(2, lambda: db.submit_update(
            "ag", setv("p", 7), writes=["p"], txn_id="T1"))
        db.sim.schedule_at(5, lambda: db.move_agent("ag", "X",
                                                    transport_delay=1))
        # Heal briefly so Z receives the orphan *after* M0 (and forwards
        # it to X) — but make the agent move on to Y before it arrives.
        db.sim.schedule_at(20, lambda: db.move_agent("ag", "Y",
                                                     transport_delay=1))
        db.sim.schedule_at(30, db.partitions.heal_now)
        db.quiesce()
        assert db.mutual_consistency().consistent
        for node in db.nodes.values():
            assert node.store.read("p") == 7

    def test_duplicate_orphan_forwards_repackage_once(self):
        """The same orphan reaches the home via the held broadcast AND
        multiple forwards; only one repackaged transaction results."""
        db, protocol = make_db()
        db.sim.schedule_at(1, lambda: db.partitions.partition_now(
            [["W"], ["X", "Y", "Z"]]))
        db.sim.schedule_at(2, lambda: db.submit_update(
            "ag", setv("p", 5), writes=["p"], txn_id="T1"))
        db.sim.schedule_at(5, lambda: db.move_agent("ag", "X",
                                                    transport_delay=1))
        db.sim.schedule_at(40, db.partitions.heal_now)
        db.quiesce()
        assert protocol.repackaged_count == 1
        repackaged = [
            t for t in db.recorder.committed
            if t.txn_id.startswith("rp:")
        ]
        assert len(repackaged) == 1
        assert db.mutual_consistency().consistent

    def test_partial_strip_keeps_surviving_updates_only(self):
        """An orphan writing two objects, one since overwritten: the
        repackaged transaction carries exactly the surviving write."""
        db, protocol = make_db()
        db.sim.schedule_at(1, lambda: db.partitions.partition_now(
            [["W"], ["X", "Y", "Z"]]))

        def write_both(_ctx):
            yield Write("p", 100)
            yield Write("q", 100)

        db.sim.schedule_at(2, lambda: db.submit_update(
            "ag", write_both, writes=["p", "q"], txn_id="T1"))
        db.sim.schedule_at(5, lambda: db.move_agent("ag", "X",
                                                    transport_delay=1))
        # The new home overwrites q (newer timestamp) but never touches p.
        db.sim.schedule_at(10, lambda: db.submit_update(
            "ag", setv("q", 999), writes=["q"], txn_id="T2"))
        db.sim.schedule_at(40, db.partitions.heal_now)
        db.quiesce()
        repackaged = [
            t for t in db.recorder.committed if t.txn_id == "rp:T1"
        ]
        assert len(repackaged) == 1
        assert [w.obj for w in repackaged[0].writes] == ["p"]
        for node in db.nodes.values():
            assert node.store.read("p") == 100  # survived
            assert node.store.read("q") == 999  # newer write wins

    def test_late_joiner_catches_up_from_m0_content(self):
        """Rule B1: a node far behind installs T1..Ti from the M0 itself."""
        db, protocol = make_db()
        # Z sees nothing for a while.
        db.partitions.partition_now([["W", "X", "Y"], ["Z"]])
        for i, value in enumerate((1, 2, 3)):
            db.submit_update("ag", setv("p", value), writes=["p"],
                             txn_id=f"T{i}")
        db.quiesce()
        assert db.nodes["Z"].store.read("p") == 0
        # Reconnect W,X,Y,Z but immediately isolate W (the old home), so
        # Z can only learn the history through X/Y or the M0.
        db.partitions.heal_now()
        db.run(until=db.sim.now + 0.1)
        db.move_agent("ag", "X", transport_delay=0.2)
        db.quiesce()
        assert db.nodes["Z"].store.read("p") == 3
        assert db.mutual_consistency().consistent
