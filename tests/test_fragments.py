"""Tests for fragments, tokens, agents, and the read-access graph."""

import pytest

from repro.core import Agent, Fragment, FragmentCatalog, ReadAccessGraph, Token
from repro.errors import DesignError, TokenError


class TestFragment:
    def test_explicit_membership(self):
        fragment = Fragment("F", objects=["a", "b"])
        assert fragment.contains("a")
        assert not fragment.contains("c")

    def test_prefix_membership(self):
        fragment = Fragment("ACT", prefixes=["act:1:"])
        assert fragment.contains("act:1:dep")
        assert not fragment.contains("act:2:dep")

    def test_requires_some_membership_rule(self):
        with pytest.raises(DesignError):
            Fragment("empty")

    def test_requires_name(self):
        with pytest.raises(DesignError):
            Fragment("", objects=["a"])


class TestFragmentCatalog:
    def test_lookup_by_object_and_prefix(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", objects=["a"]))
        catalog.add(Fragment("F2", prefixes=["p:"]))
        assert catalog.fragment_of("a") == "F1"
        assert catalog.fragment_of("p:anything") == "F2"

    def test_unassigned_object_strict_raises(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", objects=["a"]))
        with pytest.raises(DesignError):
            catalog.fragment_of("mystery")
        assert catalog.fragment_of("mystery", strict=False) is None

    def test_overlapping_objects_rejected(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", objects=["a"]))
        with pytest.raises(DesignError):
            catalog.add(Fragment("F2", objects=["a", "b"]))

    def test_overlapping_prefixes_rejected(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", prefixes=["act:"]))
        with pytest.raises(DesignError):
            catalog.add(Fragment("F2", prefixes=["act:1:"]))

    def test_duplicate_name_rejected(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", objects=["a"]))
        with pytest.raises(DesignError):
            catalog.add(Fragment("F1", objects=["b"]))

    def test_get_unknown_raises(self):
        with pytest.raises(DesignError):
            FragmentCatalog().get("nope")

    def test_container_protocol(self):
        catalog = FragmentCatalog()
        catalog.add(Fragment("F1", objects=["a"]))
        assert "F1" in catalog
        assert len(catalog) == 1
        assert [f.name for f in catalog] == ["F1"]


class TestToken:
    def test_usable_only_at_home(self):
        token = Token("F", "A")
        assert token.usable_at("A")
        assert not token.usable_at("B")

    def test_move_lifecycle(self):
        token = Token("F", "A")
        token.begin_move("B")
        assert token.in_transit
        assert not token.usable_at("A")
        assert not token.usable_at("B")
        assert token.complete_move() == "B"
        assert token.usable_at("B")
        assert token.moves_completed == 1

    def test_double_begin_rejected(self):
        token = Token("F", "A")
        token.begin_move("B")
        with pytest.raises(TokenError):
            token.begin_move("C")

    def test_complete_without_begin_rejected(self):
        with pytest.raises(TokenError):
            Token("F", "A").complete_move()


class TestAgent:
    def test_grant_and_controls(self):
        agent = Agent("ag", "A")
        token = Token("F", "somewhere-else")
        agent.grant(token)
        assert agent.controls("F")
        assert token.home_node == "A"  # token follows the agent
        assert agent.fragments == ["F"]

    def test_double_grant_rejected(self):
        agent = Agent("ag", "A")
        agent.grant(Token("F", "A"))
        with pytest.raises(TokenError):
            agent.grant(Token("F", "A"))

    def test_token_for_unknown_fragment(self):
        with pytest.raises(TokenError):
            Agent("ag", "A").token_for("F")

    def test_kind_validated(self):
        with pytest.raises(TokenError):
            Agent("ag", "A", kind="robot")


class TestReadAccessGraph:
    def make_catalog(self):
        catalog = FragmentCatalog()
        for name, objs in [("F1", ["a"]), ("F2", ["b"]), ("F3", ["c"])]:
            catalog.add(Fragment(name, objects=objs))
        return catalog

    def test_declare_transaction_resolves_objects(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.declare_transaction("F1", ["b", "c"])
        assert ("F1", "F2") in rag.edges
        assert ("F1", "F3") in rag.edges

    def test_intra_fragment_reads_add_no_edge(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.declare_transaction("F1", ["a"])
        assert rag.edges == []
        assert rag.allows("F1", "F1")

    def test_allows(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.add_read_edge("F1", "F2")
        assert rag.allows("F1", "F2")
        assert not rag.allows("F2", "F1")

    def test_unknown_fragment_rejected(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        with pytest.raises(DesignError):
            rag.add_read_edge("F1", "NOPE")

    def test_star_is_elementarily_acyclic(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.add_read_edge("F1", "F2")
        rag.add_read_edge("F1", "F3")
        assert rag.is_elementarily_acyclic()
        rag.assert_elementarily_acyclic()  # no raise

    def test_figure_431_shape_rejected(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.add_read_edge("F1", "F2")
        rag.add_read_edge("F1", "F3")
        rag.add_read_edge("F2", "F3")
        assert not rag.is_elementarily_acyclic()
        with pytest.raises(DesignError) as excinfo:
            rag.assert_elementarily_acyclic()
        assert "cycle" in str(excinfo.value)
        assert rag.violation_cycle() is not None

    def test_reads_from(self):
        catalog = self.make_catalog()
        rag = ReadAccessGraph(catalog)
        rag.add_read_edge("F1", "F2")
        assert rag.reads_from("F1") == ["F2"]
        assert rag.reads_from("F2") == []
