"""Availability supervisor: detection, failover, demotion, reconfiguration.

The paper leaves the *trigger* for agent movement after a home-node
crash to an operator (Section 4.4); the supervisor closes that loop.
These tests pin the behavioural contract end to end:

* heartbeat detection + succession elect a live replica and move the
  token through the ordinary movement machinery;
* updates rejected while the home is down commit after failover — the
  outage is bounded (the MTTR claim), and the whole run survives the
  offline lineage audit including the epoch-fencing check;
* a committed-but-unpropagated suffix stranded on a crashed home is
  discarded at demotion — counted, and absent from every replica —
  even when failover interleaves with crash recovery;
* a k=2 fragment can never fail over (no provable majority), and the
  detector backs off instead of hammering the dead home;
* quorum reads re-size and retry once after an online reconfiguration
  shrinks the countable replica set, instead of timing out against
  membership that no longer exists;
* online add/remove of replicas syncs joiners through catch-up, purges
  leavers, and refuses the configurations that can lose data.
"""

import pytest

from repro import (
    DesignError,
    FragmentedDatabase,
    QuorumConfig,
    RequestStatus,
)
from repro.analysis.audit import audit_events
from repro.availability import AvailabilityConfig
from repro.cc.ops import Write


def write_body(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


#: Fast-but-sound detector for tests: the pong deadline (= interval)
#: must exceed the unicast round trip or a live home gets suspected.
FAST = dict(
    heartbeat_interval=3.0,
    suspect_after=2,
    succession_timeout=6.0,
    takeover_delay=1.0,
)


def make_db(quorum=None, availability=None, replicas=("A", "B", "C")):
    """Five nodes; fragment F restricted to ``replicas`` (home A)."""
    db = FragmentedDatabase(
        ["A", "B", "C", "D", "E"], quorum=quorum, availability=availability
    )
    db.enable_tracing(None)
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.set_replication("F", list(replicas))
    db.load({"x": 0})
    db.finalize()
    return db


class TestFailover:
    def test_detection_failover_and_bounded_outage(self):
        db = make_db(availability=AvailabilityConfig(**FAST))
        db.availability.start(until=250.0)
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.run(until=10.0)

        db.fail_node("A")
        rejected = db.submit_update("ag", write_body("x", 8), writes=["x"])
        db.run(until=db.sim.now + 40)

        # Loud rejection while the home was down, then failover.
        assert rejected.status is RequestStatus.REJECTED
        assert "down" in rejected.reason
        assert db.metrics.value("avail.updates_blocked") == 1
        assert db.metrics.value("avail.suspicions") >= 1
        assert db.metrics.value("avail.failovers") == 1
        assert db.metrics.value("avail.epoch_cuts") == 1
        assert db.metrics.value("avail.mttr")["count"] == 1

        # The agent re-homed inside the replica set, in a new epoch.
        new_home = db.agents["ag"].home_node
        assert new_home in {"B", "C"}
        assert db.agents["ag"].token_for("F").payload["epoch"] >= 1

        # The outage is over: the resubmitted update commits.
        retried = db.submit_update("ag", write_body("x", 8), writes=["x"])
        db.run(until=db.sim.now + 20)
        assert retried.status is RequestStatus.COMMITTED
        assert db.nodes[new_home].store.read("x") == 8

        # The recovered ex-home rejoins under the new epoch.
        db.recover_node("A")
        db.quiesce()
        assert db.nodes["A"].store.read("x") == 8
        assert db.mutual_consistency().consistent
        report = audit_events(event.as_dict() for event in db.tracer)
        assert report.ok, report.violations
        assert report.epoch_cuts == 1

    def test_stranded_suffix_discarded_at_demotion(self):
        """Failover x recovery interleaving: updates the dead home
        committed but never propagated are declared lost by the epoch
        cut and discarded when the ex-home recovers and demotes."""
        db = make_db(availability=AvailabilityConfig(**FAST))
        db.availability.start(until=400.0)
        db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.run(until=15.0)

        # Isolate the home, commit a suffix only it has, then crash it
        # before the partition heals — the multicasts die with it.
        db.partitions.partition_now([["A"], ["B", "C", "D", "E"]])
        stranded = [
            db.submit_update("ag", write_body("x", 666), writes=["x"]),
            db.submit_update("ag", write_body("x", 667), writes=["x"]),
        ]
        db.run(until=db.sim.now + 3)
        assert all(t.status is RequestStatus.COMMITTED for t in stranded)
        db.fail_node("A")
        db.partitions.heal_now()

        db.run(until=db.sim.now + 60)
        assert db.metrics.value("avail.failovers") == 1
        new_home = db.agents["ag"].home_node
        assert new_home in {"B", "C"}

        # Recovery re-delivers the held epoch cut: the ex-home demotes,
        # drops the stale suffix, and resyncs under the new epoch.
        db.recover_node("A")
        db.quiesce()
        assert db.metrics.value("avail.demotions") == 1
        assert db.metrics.value("avail.updates_discarded") >= 2
        for node in db.nodes.values():
            if node.store.exists("x"):
                assert node.store.read("x") == 1
        assert db.mutual_consistency().consistent
        report = audit_events(event.as_dict() for event in db.tracer)
        assert report.ok, report.violations
        assert report.epoch_cuts == 1

    def test_k2_fragment_never_fails_over(self):
        """With k=2 the surviving replica cannot prove a majority; the
        failover aborts and the probe interval backs off."""
        db = make_db(
            availability=AvailabilityConfig(**FAST), replicas=("A", "B")
        )
        db.availability.start(until=80.0)
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.run(until=10.0)
        db.fail_node("A")
        db.run(until=90.0)
        assert db.metrics.value("avail.failovers") == 0
        assert db.metrics.value("avail.failovers_aborted") >= 1
        assert db.agents["ag"].home_node == "A"
        watch = db.availability._watch["ag"]
        assert watch.interval > db.availability.config.heartbeat_interval


class TestQuorumReadRetry:
    def _read(self, db, at):
        from repro import scripted_body

        observed = []
        tracker = db.submit_readonly(
            "ag", scripted_body([("r", "x")], collect=observed), at=at,
            reads=["x"],
        )
        return tracker, observed

    def test_retry_resizes_quorum_after_reconfiguration(self):
        """Two of three replicas crash mid-read; removing them from the
        replica set lets the retry pass resolve with the survivor."""
        db = make_db(quorum=QuorumConfig(timeout=20.0))
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.fail_node("B")
        db.fail_node("C")
        tracker, observed = self._read(db, at="D")
        db.run(until=db.sim.now + 5)  # A's vote arrives; quorum still 2
        db.remove_replica("F", "B")
        db.remove_replica("F", "C")
        db.run(until=db.sim.now + 60)
        assert tracker.succeeded
        assert observed == [("x", 7)]
        assert db.metrics.value("quorum.retries") == 1
        assert db.metrics.value("quorum.timeouts") == 0

    def test_retry_exhausts_into_loud_timeout(self):
        """Without a reconfiguration the retry changes nothing: one
        extra timeout period, then the read fails loudly as before."""
        db = make_db(quorum=QuorumConfig(timeout=20.0))
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.fail_node("B")
        db.fail_node("C")
        tracker, observed = self._read(db, at="D")
        db.run(until=db.sim.now + 70)
        assert tracker.status is RequestStatus.TIMED_OUT
        assert "quorum" in tracker.reason
        assert observed == []
        assert db.metrics.value("quorum.retries") == 1
        assert db.metrics.value("quorum.timeouts") == 1


class TestReconfiguration:
    def test_add_replica_syncs_joiner_online(self):
        db = make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.add_replica("F", "D")
        db.quiesce()
        assert db.metrics.value("avail.joiners_synced") == 1
        assert db.replication_epoch["F"] == 1
        assert "F" not in db.syncing_replicas
        assert db.replica_set("F") == ("A", "B", "C", "D")
        # The joiner came across with history it never streamed...
        assert db.nodes["D"].store.read("x") == 7
        # ...and follows the fragment's new-epoch stream from now on.
        assert db.propagation_plan("F") == (("A", "B", "C", "D"), "f:F@e1")
        db.submit_update("ag", write_body("x", 9), writes=["x"])
        db.quiesce()
        assert db.nodes["D"].store.read("x") == 9
        assert db.mutual_consistency().consistent

    def test_syncing_joiner_does_not_count(self):
        """Until catch-up completes a joiner is excluded from quorum
        denominators — it can't vouch for the present."""
        db = make_db()
        db.quiesce()
        db.add_replica("F", "D")
        # Before any simulation runs, the joiner is still syncing.
        assert db.syncing_replicas["F"] == {"D"}
        assert db.countable_replicas("F") == ("A", "B", "C")
        db.quiesce()
        assert db.countable_replicas("F") == ("A", "B", "C", "D")

    def test_remove_replica_purges_leaver(self):
        db = make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.remove_replica("F", "C")
        assert db.replica_set("F") == ("A", "B")
        assert db.replication_epoch["F"] == 1
        # The leaver's frozen copy is gone everywhere it could hide.
        leaver = db.nodes["C"]
        assert not leaver.store.exists("x")
        assert "F" not in leaver.streams.archive
        assert leaver.checkpoints.get("F") is None
        # Later updates no longer reach it.
        db.submit_update("ag", write_body("x", 8), writes=["x"])
        db.quiesce()
        assert not leaver.store.exists("x")
        assert db.nodes["B"].store.read("x") == 8
        assert db.mutual_consistency().consistent

    def test_reconfiguration_guards(self):
        db = make_db()
        db.quiesce()
        with pytest.raises(DesignError):
            db.remove_replica("F", "A")  # the agent's home may not leave
        with pytest.raises(DesignError):
            db.add_replica("F", "B")  # already a replica
        with pytest.raises(DesignError):
            db.add_replica("F", "Z")  # unknown node
        db.fail_node("E")
        with pytest.raises(DesignError):
            db.add_replica("F", "E")  # crashed joiner

    def test_fully_replicated_fragment_is_static(self):
        db = FragmentedDatabase(["A", "B", "C"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()
        with pytest.raises(DesignError):
            db.add_replica("F", "C")
        with pytest.raises(DesignError):
            db.remove_replica("F", "B")
