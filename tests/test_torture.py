"""Randomized movement-protocol torture tests.

These found four real protocol bugs during development (commit after
token departure, quasi-transactions lost to deadlock victimhood,
resync blind to prepared-but-uncommitted transactions, resync resuming
below the token's high-water mark) — they stay here to keep those
fixed.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.torture import (
    GUARANTEES,
    PROTOCOLS,
    run_movement_torture,
)

SAFE_PROTOCOLS = ["majority", "with-data", "with-seqno"]


class TestGuaranteeMatrix:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        protocol=st.sampled_from(SAFE_PROTOCOLS),
    )
    def test_safe_protocols_preserve_both_properties(self, seed, protocol):
        result = run_movement_torture(seed, protocol)
        assert result.mutually_consistent, (protocol, seed)
        assert result.fragmentwise, (protocol, seed)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_corrective_preserves_mutual_consistency(self, seed):
        result = run_movement_torture(seed, "corrective")
        assert result.mutually_consistent, seed

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        protocol=st.sampled_from(list(PROTOCOLS)),
    )
    def test_all_runs_terminate_cleanly(self, seed, protocol):
        result = run_movement_torture(seed, protocol)
        assert result.submitted == 15
        assert 0 <= result.committed <= result.submitted

    def test_unprotected_moves_do_break_things(self):
        """The hazard is real: "none" must violate something somewhere."""
        mc_breaks = 0
        fw_breaks = 0
        for seed in range(30):
            result = run_movement_torture(seed, "none")
            mc_breaks += not result.mutually_consistent
            fw_breaks += not result.fragmentwise
        assert mc_breaks > 0
        assert fw_breaks > 0

    def test_corrective_does_sacrifice_fragmentwise(self):
        fw_breaks = sum(
            not run_movement_torture(seed, "corrective").fragmentwise
            for seed in range(30)
        )
        assert fw_breaks > 0

    def test_guarantee_table_is_complete(self):
        assert set(GUARANTEES) == set(PROTOCOLS)
