"""HTTP front door tests: routing, failover retries, errors, metrics.

Each test boots a real asyncio-backed database with a FrontDoor and
speaks actual HTTP to it — the same path `repro serve` exposes.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.audit import audit_events
from repro.availability import AvailabilityConfig
from repro.core.system import FragmentedDatabase
from repro.core.transaction import (
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.serve import FrontDoor


def build_db(availability=True, nodes=5):
    names = [chr(ord("A") + i) for i in range(nodes)]
    db = FragmentedDatabase(
        names,
        runtime="asyncio",
        tick=0.005,
        replication_factor=3,
        availability=AvailabilityConfig() if availability else None,
    )
    db.add_agent("ag0", home_node="A")
    db.add_fragment("F0", agent="ag0", objects=["x"])
    db.add_agent("ag1", home_node="B")
    db.add_fragment("F1", agent="ag1", objects=["y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    db.enable_tracing()
    return db


@pytest.fixture
def served():
    db = build_db()
    db.start_runtime()
    db.call_on_runtime(lambda: db.availability.start(until=1e9))
    door = FrontDoor(db, retry_interval=0.1, deadline=30.0).start()
    yield db, door
    door.stop()
    db.stop_runtime()
    db.sim.check()


def post(base, path, payload, timeout=35.0):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode()
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base, path, timeout=35.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def test_routes_write_to_agent_home(served):
    db, door = served
    code, body = post(door.url, "/updates", {"object": "x", "value": 11})
    assert code == 200, body
    assert body["status"] == "committed"
    assert body["fragment"] == "F0"
    assert body["node"] == "A"  # the agent's home, not the HTTP host
    code, body = post(door.url, "/updates", {"object": "y", "delta": 4})
    assert code == 200, body
    assert body["node"] == "B"  # different fragment, different home


def test_read_local_and_via_quorum(served):
    db, door = served
    post(door.url, "/updates", {"object": "x", "value": 23})
    code, body = post(door.url, "/reads", {"object": "x"})
    assert code == 200 and body["value"] == 23
    # E does not replicate F0 (k=3 of 5): the declared read routes
    # through the quorum-read version vote before the body runs.
    code, body = post(door.url, "/reads", {"object": "x", "at": "E"})
    assert code == 200, body
    assert body["value"] == 23
    assert body["node"] == "E"


def test_client_errors(served):
    db, door = served
    code, body = post(door.url, "/updates", {"object": "zzz", "value": 1})
    assert code == 404 and "no fragment" in body["error"]
    code, body = post(door.url, "/updates", {"object": "x"})
    assert code == 400
    code, body = post(door.url, "/updates", {"value": 1})
    assert code == 400
    code, body = post(door.url, "/reads", {"object": "x", "at": "NOPE"})
    assert code == 404
    code, body = post(door.url, "/nope", {})
    assert code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(door.url + "/nope", timeout=10)
    assert excinfo.value.code == 404


def test_terminal_rejection_maps_to_409(served):
    db, door = served

    def rejecting_submit(agent, body, on_done=None, **kwargs):
        spec = TransactionSpec(txn_id="TREJ", agent=agent, body=body)
        tracker = RequestTracker(spec, db.sim.now, "A", on_done=on_done)
        tracker.finish(
            RequestStatus.REJECTED, db.sim.now, reason="backpressure limit"
        )
        return tracker

    db.submit_update = rejecting_submit
    code, body = post(door.url, "/updates", {"object": "x", "value": 1})
    assert code == 409
    assert body["reason"] == "backpressure limit"
    assert body["attempts"] == 1  # non-transient: no retry loop


def test_kill_plus_failover_queue_and_retry(served):
    db, door = served
    code, _ = post(door.url, "/updates", {"object": "x", "value": 1})
    assert code == 200
    db.call_on_runtime(lambda: db.hard_kill_node("A"))
    # The write arrives mid-outage: the gate rejects transiently, the
    # front door queues and retries, the supervisor re-homes ag0, and
    # the same HTTP request returns 200 from the new home.
    code, body = post(door.url, "/updates", {"object": "x", "value": 2})
    assert code == 200, body
    assert body["attempts"] > 1
    assert body["node"] != "A"
    assert db.metrics.value("http.updates_retried") > 0
    assert db.metrics.value("avail.failovers") >= 1
    # Location transparency: /fragments now reports the new home.
    _, frags = get(door.url, "/fragments")
    assert frags["fragments"]["F0"]["home"] == body["node"]
    assert frags["nodes"]["A"]["down"] is True
    # The captured live trace passes the §4.4 audit.
    report = audit_events(e.as_dict() for e in db.tracer.events())
    assert report.ok, report.checks


def test_metrics_endpoint_matches_registry(served):
    db, door = served
    post(door.url, "/updates", {"object": "x", "value": 5})
    _, payload = get(door.url, "/metrics")
    snapshot = db.metrics.snapshot()
    assert payload["counters"]["http.updates_committed"] == 1
    # Monotonic counters can only have advanced between the HTTP read
    # and the direct snapshot; spot-check stable ones exactly.
    for name in ("http.updates_committed", "txn.committed"):
        if name in snapshot["counters"]:
            assert payload["counters"][name] == snapshot["counters"][name]
    assert set(payload) == {"counters", "gauges", "histograms"}


def test_updates_and_dashboard_endpoints(served):
    db, door = served
    post(door.url, "/updates", {"object": "x", "value": 9})
    _, listing = get(door.url, "/updates")
    assert listing["count"] >= 1
    statuses = {u["txn"]: u["status"] for u in listing["updates"]}
    assert "committed" in statuses.values()
    _, data = get(door.url, "/data.json")
    assert {"meta", "series", "spans"} <= set(data)
    with urllib.request.urlopen(door.url + "/", timeout=10) as response:
        page = response.read()
    assert b"<" in page and b"repro serve" in page
    _, health = get(door.url, "/healthz")
    assert health["ok"] is True


def test_sse_pings_on_new_trace_events(served):
    db, door = served
    door.sse_poll_interval = 0.05
    door.sse_max_pings = 1
    with urllib.request.urlopen(door.url + "/events", timeout=10) as stream:
        time.sleep(0.1)
        post(door.url, "/updates", {"object": "x", "value": 3})
        line = stream.readline()
        assert line.strip() == b"data: grew"


def test_overload_returns_503():
    db = build_db(availability=False)
    db.start_runtime()
    door = FrontDoor(db, max_queued=1).start()
    try:
        # Saturate the single admission slot from inside, then observe
        # the next HTTP write bounce with 503.
        assert door._admission.acquire(blocking=False)
        code, body = post(door.url, "/updates", {"object": "x", "value": 1})
        assert code == 503
        assert db.metrics.value("http.updates_overload") == 1
        door._admission.release()
        code, _ = post(door.url, "/updates", {"object": "x", "value": 1})
        assert code == 200
    finally:
        door.stop()
        db.stop_runtime()
    db.sim.check()
