"""Causal lineage: span identity threaded commit -> install.

The tentpole contract: one :class:`SpanContext` stamped at commit is
visible at every later stage — the batcher's send, the broadcast's
wire events, the transport's retransmissions and duplicate drops, the
apply queue's install — so an offline reader can follow a transaction
through the pipeline without correlating sequence numbers by hand.
"""

from repro import FragmentedDatabase
from repro.analysis.audit import build_timeline
from repro.cc.ops import Read, Write
from repro.core.movement.corrective import CorrectiveMoveProtocol
from repro.net.faults import FaultPlan
from repro.obs import taxonomy
from repro.replication import PipelineConfig


def make_db(nodes=("A", "B", "C"), trace=True, **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    if trace:
        db.enable_tracing()
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x", "y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    return db


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def events_of(db, etype):
    return [e for e in db.tracer if e.type == etype]


class TestSpanStamping:
    def test_span_allocated_only_while_tracing(self):
        db = make_db(trace=False)
        db.submit_update("ag", bump(), reads=["x"], writes=["x"], txn_id="T0")
        db.quiesce()
        for node in db.nodes.values():
            for archive in node.streams.archive.values():
                for quasi in archive.values():
                    assert quasi.span is None

    def test_span_fields_propagate_to_install(self):
        db = make_db()
        db.submit_update("ag", bump(), reads=["x"], writes=["x"], txn_id="T0")
        db.quiesce()
        (commit,) = events_of(db, taxonomy.LINEAGE_COMMIT)
        assert commit.fields["txn"] == "T0"
        assert commit.fields["agent"] == "ag"
        assert commit.fields["fragment"] == "F"
        assert commit.fields["origin_node"] == "A"
        assert commit.fields["objects"] == ["x"]
        (send,) = events_of(db, taxonomy.LINEAGE_SEND)
        assert send.fields["txns"] == ["T0"]
        installs = events_of(db, taxonomy.QT_INSTALL)
        assert {e.fields["node"] for e in installs} == {"B", "C"}
        for install in installs:
            assert install.fields["batch_id"] == send.fields["batch_id"]
            assert install.fields["origin_node"] == "A"
            assert install.fields["agent"] == "ag"

    def test_batched_spans_share_batch_identity(self):
        db = make_db(pipeline=PipelineConfig(batch_size=4, batch_window=5.0))
        for index in range(3):
            db.sim.schedule_at(
                1.0,
                lambda i=index: db.submit_update(
                    "ag", bump(), reads=["x"], writes=["x"], txn_id=f"T{i}"
                ),
            )
        db.quiesce()
        sends = events_of(db, taxonomy.LINEAGE_SEND)
        assert len(sends) == 1  # one sealed batch carried all three
        assert sorted(sends[0].fields["txns"]) == ["T0", "T1", "T2"]
        for install in events_of(db, taxonomy.QT_INSTALL):
            assert install.fields["batch_id"] == sends[0].fields["batch_id"]


class TestRetransmitIdentity:
    def run_lossy(self):
        db = make_db(
            nodes=("A", "B", "C", "D"),
            faults=FaultPlan(loss_rate=0.4, dup_rate=0.2),
            seed=5,
        )
        for index in range(6):
            db.sim.schedule_at(
                float(index),
                lambda i=index: db.submit_update(
                    "ag", bump(), reads=["x"], writes=["x"], txn_id=f"T{i}"
                ),
            )
        db.quiesce()
        return db

    def test_retransmitted_batches_keep_span_identity(self):
        db = self.run_lossy()
        resends = [
            e for e in events_of(db, taxonomy.RETRANS_SEND)
            if e.fields["kind"] == "qt"
        ]
        assert resends, "loss at 40% must force qt retransmissions"
        known = {f"T{i}" for i in range(6)}
        for event in resends:
            assert set(event.fields["txns"]) <= known
            assert event.fields["txns"], "a qt resend names its cargo"

    def test_duplicate_drops_keep_span_identity(self):
        db = self.run_lossy()
        duplicates = [
            e
            for e in events_of(db, taxonomy.RETRANS_DUPLICATE)
            + events_of(db, taxonomy.BROADCAST_DUPLICATE)
            if e.fields.get("txns")
        ]
        assert duplicates, "dup-rate 20% must surface duplicate drops"
        known = {f"T{i}" for i in range(6)}
        for event in duplicates:
            assert set(event.fields["txns"]) <= known

    def test_lossy_run_still_installs_exactly_once(self):
        db = self.run_lossy()
        seen = set()
        for install in events_of(db, taxonomy.QT_INSTALL):
            key = (install.fields["source_txn"], install.fields["node"])
            assert key not in seen, f"double install {key}"
            seen.add(key)


class TestRepackagedLineage:
    def test_repackaged_orphan_carries_parent_link(self):
        db = make_db(movement=CorrectiveMoveProtocol())
        db.sim.schedule_at(
            1, lambda: db.partitions.partition_now([["A"], ["B", "C"]])
        )
        db.sim.schedule_at(
            5,
            lambda: db.submit_update(
                "ag", bump(), reads=["x"], writes=["x"], txn_id="T1"
            ),
        )
        db.sim.schedule_at(10, lambda: db.move_agent("ag", "B"))
        db.sim.schedule_at(
            25,
            lambda: db.submit_update(
                "ag", bump("y"), reads=["y"], writes=["y"], txn_id="T2"
            ),
        )
        db.sim.schedule_at(60, db.partitions.heal_now)
        db.quiesce()
        commits = {
            e.fields["txn"]: e for e in events_of(db, taxonomy.LINEAGE_COMMIT)
        }
        assert "rp:T1" in commits, "the orphan was repackaged"
        assert commits["rp:T1"].fields["parent"] == "T1"
        # The timeline of T1 follows the parent link into rp:T1.
        timeline = build_timeline(
            [e.as_dict() for e in db.tracer], "T1"
        )
        types = [e["type"] for e in timeline]
        assert taxonomy.LINEAGE_COMMIT in types
        assert any(
            e["type"] == taxonomy.QT_INSTALL
            and e["source_txn"] == "rp:T1"
            for e in timeline
        )


class TestStageHistograms:
    def test_queue_wait_and_propagation_observed_without_tracing(self):
        db = make_db(trace=False)
        db.submit_update("ag", bump(), reads=["x"], writes=["x"], txn_id="T0")
        db.quiesce()
        snap = db.snapshot()["histograms"]
        assert snap["pipeline.batch_wait"]["count"] == 1
        assert snap["pipeline.transport_wait"]["count"] >= 1
        assert snap["pipeline.apply_wait"]["count"] == 2  # installs at B, C
        prop = snap["pipeline.propagation.F"]
        assert prop["count"] == 2
        assert prop["min"] > 0.0  # network latency is nonzero

    def test_propagation_excludes_origin_install(self):
        db = make_db()
        db.submit_update("ag", bump(), reads=["x"], writes=["x"], txn_id="T0")
        db.quiesce()
        # 3 nodes, 1 commit: origin applies at commit, two remote
        # installs feed the propagation histogram.
        assert db.metrics.value("pipeline.propagation.F")["count"] == 2
