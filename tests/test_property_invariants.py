"""Property-based invariant tests for the substrate layers."""

from hypothesis import given, settings, strategies as st

from repro.cc.locks import LockMode, LockTable
from repro.net import Network, ReliableBroadcast, Topology
from repro.net.broadcast import SeqPayload
from repro.sim import SeededRng, Simulator

OBJECTS = ["x", "y", "z"]
TXNS = ["T0", "T1", "T2", "T3"]


@st.composite
def lock_scripts(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    script = []
    for _ in range(n):
        if draw(st.booleans()):
            script.append(
                (
                    "acquire",
                    draw(st.sampled_from(TXNS)),
                    draw(st.sampled_from(OBJECTS)),
                    draw(st.sampled_from([LockMode.S, LockMode.X])),
                )
            )
        else:
            script.append(("release", draw(st.sampled_from(TXNS))))
    return script


class TestLockTableInvariants:
    @given(lock_scripts())
    @settings(max_examples=200)
    def test_no_conflicting_holders_ever(self, script):
        table = LockTable()
        for step in script:
            if step[0] == "acquire":
                _op, txn, obj, mode = step
                table.acquire(txn, obj, mode)
            else:
                table.release_all(step[1])
            for obj in OBJECTS:
                holders = table.holders_of(obj)
                x_holders = [
                    t for t, m in holders.items() if m is LockMode.X
                ]
                assert len(x_holders) <= 1
                if x_holders:
                    assert len(holders) == 1  # X excludes everything

    @given(lock_scripts())
    @settings(max_examples=100)
    def test_releasing_everyone_empties_the_table(self, script):
        table = LockTable()
        for step in script:
            if step[0] == "acquire":
                _op, txn, obj, mode = step
                table.acquire(txn, obj, mode)
            else:
                table.release_all(step[1])
        for txn in TXNS:
            table.release_all(txn)
        for obj in OBJECTS:
            assert table.holders_of(obj) == {}
            assert table.queued_for(obj) == []

    @given(lock_scripts())
    @settings(max_examples=100)
    def test_granted_waiters_actually_hold(self, script):
        table = LockTable()
        for step in script:
            if step[0] == "acquire":
                _op, txn, obj, mode = step
                table.acquire(txn, obj, mode)
            else:
                granted = table.release_all(step[1])
                for txn, obj, mode in granted:
                    held = table.holders_of(obj).get(txn)
                    assert held is mode or held is LockMode.X


class TestBroadcastInvariants:
    @given(
        order=st.permutations(list(range(8))),
        dup=st.lists(st.integers(min_value=0, max_value=7), max_size=4),
    )
    @settings(max_examples=150)
    def test_any_arrival_order_delivers_in_sequence_exactly_once(
        self, order, dup
    ):
        sim = Simulator()
        topo = Topology.full_mesh(["A", "B"])
        net = Network(sim, topo)
        bcast = ReliableBroadcast(net)
        delivered = []
        bcast.attach("A", lambda s, q, b: None)
        bcast.attach("B", lambda s, q, b: delivered.append(q))
        for seq in list(order) + list(dup):
            bcast._process("B", SeqPayload("A", seq, "k", f"m{seq}"))
        assert delivered == list(range(8))

    @given(
        seqs_a=st.permutations(list(range(5))),
        seqs_b=st.permutations(list(range(5))),
    )
    @settings(max_examples=50)
    def test_per_sender_streams_are_independent(self, seqs_a, seqs_b):
        sim = Simulator()
        topo = Topology.full_mesh(["A", "B", "C"])
        net = Network(sim, topo)
        bcast = ReliableBroadcast(net)
        delivered = []
        for name in ("A", "B", "C"):
            bcast.attach(
                name,
                (lambda s, q, b: delivered.append((s, q)))
                if name == "C"
                else (lambda s, q, b: None),
            )
        for seq in seqs_a:
            bcast._process("C", SeqPayload("A", seq, "k", None))
        for seq in seqs_b:
            bcast._process("C", SeqPayload("B", seq, "k", None))
        from_a = [q for s, q in delivered if s == "A"]
        from_b = [q for s, q in delivered if s == "B"]
        assert from_a == list(range(5))
        assert from_b == list(range(5))


class TestSimulatorInvariants:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50)
    def test_rng_fork_stability(self, seed):
        a = SeededRng(seed).fork("label")
        b = SeededRng(seed).fork("label")
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)
        ]
