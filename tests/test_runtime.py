"""Runtime backend tests: codec, scheduler, TCP mesh, determinism.

The asyncio backend's contract is *indistinguishability*: the protocol
stack schedules and sends through the same surface as the simulator,
so these tests drive real sockets and a real event loop through the
exact entry points the simulated tests use.
"""

import threading
import time

import pytest

from repro.availability import AvailabilityConfig
from repro.cc.ops import Write
from repro.core.system import FragmentedDatabase
from repro.core.transaction import QuasiTransaction
from repro.errors import DesignError, SimulationError
from repro.net.broadcast import SeqPayload
from repro.net.message import Message
from repro.net.reliable import RPacket
from repro.storage.values import Version
from repro.runtime.codec import CodecError, WireCodec, default_codec
from repro.runtime.scheduler import AsyncioScheduler

# ---------------------------------------------------------------------------
# Wire codec


def roundtrip(message: Message) -> Message:
    codec = default_codec()
    frame = codec.encode_frame(message)
    assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")
    return codec.decode_frame(frame[4:])


def test_codec_roundtrips_plain_payload():
    message = Message(
        src="A", dst="B", kind="ping", payload={"n": 1, "s": "x"},
        sent_at=2.5,
    )
    back = roundtrip(message)
    assert back.src == "A" and back.dst == "B"
    assert back.kind == "ping"
    assert back.payload == {"n": 1, "s": "x"}
    assert back.sent_at == 2.5


def test_codec_roundtrips_structured_containers():
    payload = {
        "tuple": (1, 2, ("nested", 3)),
        "set": {3, 1, 2},
        "frozen": frozenset({"a", "b"}),
        "bytes": b"\x00\xff",
        "int_keys": {1: "one", 2: "two"},
    }
    back = roundtrip(Message("A", "B", "mixed", payload)).payload
    assert back["tuple"] == (1, 2, ("nested", 3))
    assert isinstance(back["tuple"], tuple)
    assert back["set"] == {1, 2, 3} and isinstance(back["set"], set)
    assert back["frozen"] == frozenset({"a", "b"})
    assert isinstance(back["frozen"], frozenset)
    assert back["bytes"] == b"\x00\xff"
    assert back["int_keys"] == {1: "one", 2: "two"}


def test_codec_reconstructs_registered_dataclasses():
    quasi = QuasiTransaction(
        source_txn="T1",
        fragment="F",
        agent="ag",
        origin_node="A",
        stream_seq=3,
        epoch=1,
        writes=[("x", Version(7, writer="T1", version_no=3))],
        origin_time=1.25,
    )
    packet = RPacket(
        cseq=9,
        kind="quasi",
        payload=SeqPayload("A", 4, "quasi", quasi, stream="F"),
    )
    back = roundtrip(Message("A", "B", "repl", packet)).payload
    # isinstance dispatch is what the receive path runs on — the codec
    # must hand back real instances, not dicts.
    assert isinstance(back, RPacket)
    assert isinstance(back.payload, SeqPayload)
    assert back.payload.stream == "F"
    inner = back.payload.body
    assert isinstance(inner, QuasiTransaction)
    assert inner.writes[0][0] == "x"
    version = inner.writes[0][1]
    assert isinstance(version, Version)
    assert (version.value, version.writer, version.version_no) == (7, "T1", 3)


class Odd:
    """Unregistered, module-level (picklable) payload type."""

    def __init__(self, v):
        self.v = v

    def __eq__(self, other):
        return isinstance(other, Odd) and other.v == self.v


def test_codec_pickle_fallback_for_unregistered_types():
    codec = default_codec()
    frame = codec.encode_frame(Message("A", "B", "odd", Odd(5)))
    assert codec.decode_frame(frame[4:]).payload == Odd(5)
    assert codec.pickle_fallbacks > 0


def test_codec_rejects_garbage_frames():
    codec = WireCodec()
    with pytest.raises(CodecError):
        codec.decode_frame(b"not json at all")


# ---------------------------------------------------------------------------
# AsyncioScheduler


@pytest.fixture
def sched():
    scheduler = AsyncioScheduler(tick=0.005)
    scheduler.start()
    yield scheduler
    scheduler.stop()


def test_scheduler_requires_start():
    scheduler = AsyncioScheduler()
    with pytest.raises(SimulationError, match="not started"):
        scheduler.schedule(1.0, lambda: None)


def test_scheduler_fires_in_delay_order(sched):
    order = []
    sched.schedule(6.0, lambda: order.append("late"))
    sched.schedule(2.0, lambda: order.append("early"))
    sched.run()
    assert order == ["early", "late"]
    assert sched.events_fired == 2
    assert sched.pending == 0


def test_scheduler_cancel_prevents_firing_and_settles(sched):
    fired = []
    keep = sched.schedule(2.0, lambda: fired.append("keep"))
    drop = sched.schedule(2.0, lambda: fired.append("drop"))
    drop.cancel()
    drop.cancel()  # idempotent
    sched.run()
    assert fired == ["keep"]
    assert drop.cancelled and not keep.cancelled
    assert sched.pending == 0


def test_scheduler_recurring_respects_horizon(sched):
    ticks = []
    sched.schedule_recurring(2.0, lambda: ticks.append(sched.now), until=9.0)
    sched.run()
    assert len(ticks) == 4  # t=2,4,6,8; the next (10) exceeds the horizon
    with pytest.raises(SimulationError, match="horizon"):
        sched.schedule_recurring(5.0, lambda: None, until=sched.now + 1.0)


def test_scheduler_recurring_cancel_stops_chain(sched):
    count = [0]

    def bump():
        count[0] += 1

    chain = sched.schedule_recurring(1.0, bump, until=10_000.0)
    sched.run(until=3.5)
    chain.cancel()
    seen = count[0]
    time.sleep(0.05)
    assert count[0] == seen
    assert sched.pending == 0


def test_scheduler_cross_thread_invoke_and_errors(sched):
    # invoke marshals onto the loop thread and relays return values...
    loop_thread = sched.invoke(threading.get_ident)
    assert loop_thread != threading.get_ident()
    # ...and exceptions raised by scheduled callbacks surface in check().
    def boom():
        raise ValueError("kaboom")

    sched.schedule(0.5, boom, label="boom-test")
    with pytest.raises(SimulationError, match="boom-test"):
        sched.run()
    sched.errors.clear()


def test_scheduler_clock_advances_in_ticks(sched):
    before = sched.now
    sched.run(until=before + 4.0)
    assert sched.now >= before + 4.0
    # 4 ticks at 5ms/tick is 20ms; a generous upper bound guards
    # against unit confusion (seconds vs ticks), not scheduler jitter.
    assert sched.now < before + 400.0


# ---------------------------------------------------------------------------
# TCP mesh end-to-end


def build_db(**kwargs):
    db = FragmentedDatabase(
        ["A", "B", "C"], runtime="asyncio", tick=0.005, **kwargs
    )
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    return db


def test_tcp_mesh_commit_replicates_over_real_sockets():
    db = build_db()
    with db:
        def body(_ctx):
            yield Write("x", 41)

        tracker = db.call_on_runtime(
            lambda: db.submit_update("ag", body, writes=["x"])
        )
        assert db.wait_until(lambda: tracker.succeeded, timeout=15.0), (
            tracker.status, tracker.reason,
        )
        assert db.wait_until(
            lambda: all(
                db.nodes[n].store.read_version("x").value == 41
                for n in "ABC"
            ),
            timeout=15.0,
        )
        assert db.metrics.value("tcp.frames_sent") > 0
        assert db.metrics.value("tcp.frames_received") > 0
    db.sim.check()


def test_tcp_mesh_hard_kill_failover_recommits():
    db = FragmentedDatabase(
        ["A", "B", "C", "D", "E"],
        runtime="asyncio",
        tick=0.005,
        replication_factor=3,
        availability=AvailabilityConfig(),
    )
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()

    def setter(value):
        def body(_ctx):
            yield Write("x", value)

        return body

    with db:
        db.call_on_runtime(lambda: db.availability.start(until=1e9))
        first = db.call_on_runtime(
            lambda: db.submit_update("ag", setter(1), writes=["x"])
        )
        assert db.wait_until(lambda: first.succeeded, timeout=15.0)

        db.call_on_runtime(lambda: db.hard_kill_node("A"))
        # Hard kill: socket blackhole + crash, topology untouched.  The
        # supervisor must detect via missed heartbeats and re-home the
        # agent; a client retry loop then lands the write at the new home.
        deadline = time.monotonic() + 30.0
        tracker = None
        while time.monotonic() < deadline:
            tracker = db.call_on_runtime(
                lambda: db.submit_update("ag", setter(2), writes=["x"])
            )
            db.wait_until(
                lambda: tracker.status.value != "pending", timeout=10.0
            )
            if tracker.succeeded:
                break
            time.sleep(0.05)
        assert tracker is not None and tracker.succeeded
        assert db.agents["ag"].home_node != "A"
        assert db.metrics.value("avail.failovers") >= 1
        # The dead node's guard refused delivery before the transport
        # could ack (a dead process never acknowledges).
        assert db.metrics.value("tcp.frames_dropped_down") > 0
    db.sim.check()


def test_fault_profile_requires_asyncio_runtime():
    with pytest.raises(DesignError, match="fault_profile"):
        FragmentedDatabase(["A", "B"], fault_profile={"drop": 0.1})


# ---------------------------------------------------------------------------
# Determinism: no wall-clock leakage into simulator scheduling


def test_sim_backend_is_still_deterministic():
    # Satellite check for the Clock refactor: the only sanctioned
    # real-clock read in simulator-backed analysis code is the
    # wall_clock() timing wrapper in scale_bench, which never feeds
    # back into scheduling.  Two identical runs must produce identical
    # schedules — same final-state hash, same event count.
    from repro.analysis.scale_bench import run_side

    a = run_side(nodes=8, updates=30)
    b = run_side(nodes=8, updates=30)
    assert a.state == b.state
    assert a.events_fired == b.events_fired
    assert a.committed == b.committed
