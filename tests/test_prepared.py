"""Tests for the scheduler's prepared (2PC participant) state."""

import pytest

from repro.cc import LocalScheduler, Read, TxnOutcome, Write
from repro.errors import SimulationError
from repro.sim import Simulator
from repro.storage import ObjectStore


def make_scheduler():
    sim = Simulator()
    store = ObjectStore("n")
    store.load({"x": 0, "y": 0})
    return sim, store, LocalScheduler("n", store, sim=sim)


def write_x(value):
    def body(_ctx):
        yield Write("x", value)

    return body


class TestPreparedState:
    def test_prepare_then_commit(self):
        sim, store, sched = make_scheduler()
        prepared = []
        outcomes = []
        sched.submit(
            "T1",
            write_x(5),
            meta={"hold": True, "on_prepared": lambda h: prepared.append(h)},
            on_done=lambda h, o, e: outcomes.append(o),
        )
        sim.run()
        assert len(prepared) == 1
        assert outcomes == []  # not yet decided
        assert store.read("x") == 0  # nothing applied
        sched.commit_prepared("T1")
        assert outcomes == [TxnOutcome.COMMITTED]
        assert store.read("x") == 5

    def test_prepare_then_abort(self):
        sim, store, sched = make_scheduler()
        outcomes = []
        sched.submit(
            "T1",
            write_x(5),
            meta={"hold": True},
            on_done=lambda h, o, e: outcomes.append(o),
        )
        sim.run()
        sched.abort_prepared("T1", "coordinator said no")
        assert outcomes == [TxnOutcome.ABORTED]
        assert store.read("x") == 0

    def test_prepared_holds_locks(self):
        sim, store, sched = make_scheduler()
        sched.submit("T1", write_x(5), meta={"hold": True})
        sim.run()
        seen = []

        def reader(_ctx):
            seen.append((yield Read("x")))

        sched.submit("R", reader)
        sim.run()
        assert seen == []  # blocked behind the prepared X lock
        sched.commit_prepared("T1")
        sim.run()
        assert seen == [5]

    def test_abort_releases_locks(self):
        sim, store, sched = make_scheduler()
        sched.submit("T1", write_x(5), meta={"hold": True})
        sim.run()
        seen = []

        def reader(_ctx):
            seen.append((yield Read("x")))

        sched.submit("R", reader)
        sched.abort_prepared("T1")
        sim.run()
        assert seen == [0]

    def test_commit_unprepared_rejected(self):
        sim, store, sched = make_scheduler()
        with pytest.raises(SimulationError):
            sched.commit_prepared("ghost")
        sched.submit("T1", write_x(1))  # commits immediately (no hold)
        with pytest.raises(SimulationError):
            sched.commit_prepared("T1")

    def test_abort_unprepared_rejected(self):
        sim, store, sched = make_scheduler()
        with pytest.raises(SimulationError):
            sched.abort_prepared("ghost")

    def test_prepared_can_lose_deadlock(self):
        """A prepared participant can still be chosen as a deadlock
        victim by a later cycle only through its held locks — it is
        waiting on nothing, so it can never be *in* a cycle.  Verify it
        survives a deadlock around it."""
        sim = Simulator()
        store = ObjectStore("n")
        store.load({"x": 0, "y": 0, "z": 0})
        sched = LocalScheduler("n", store, sim=sim, action_delay=1.0)
        sched.submit("P", write_x(9), meta={"hold": True})
        sim.run()

        def t_a(_ctx):
            yield Write("y", 1)
            yield Write("z", 1)

        def t_b(_ctx):
            yield Write("z", 2)
            yield Write("y", 2)

        outcomes = {}
        sched.submit("A", t_a, on_done=lambda h, o, e: outcomes.update(A=o))
        sched.submit("B", t_b, on_done=lambda h, o, e: outcomes.update(B=o))
        sim.run()
        assert sched.active["P"].state == "prepared"  # untouched
        assert TxnOutcome.ABORTED in outcomes.values()
        sched.commit_prepared("P")
        assert store.read("x") == 9
