"""Tests for the paper's conclusion extensions.

"Our approach can be generalized for dealing with ... databases that
are not fully replicated.  Finally, it is also possible to combine
several of our strategies in a single system."
"""

import pytest

from repro import (
    AcyclicReadsStrategy,
    CombinedStrategy,
    FragmentedDatabase,
    ReadLocksStrategy,
    RequestStatus,
    UnrestrictedReadsStrategy,
    scripted_body,
)
from repro.cc.ops import Read, Write
from repro.errors import DesignError, ReproError


def write_body(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


class TestCombinedStrategy:
    def make_db(self, combined):
        """F_acyclic reads F_leaf (a forest); F_free reads anything."""
        db = FragmentedDatabase(["A", "B", "C"], strategy=combined)
        db.add_agent("a1", home_node="A")
        db.add_agent("a2", home_node="B")
        db.add_agent("a3", home_node="C")
        db.add_fragment("F_acyclic", agent="a1", objects=["x"])
        db.add_fragment("F_leaf", agent="a2", objects=["y"])
        db.add_fragment("F_free", agent="a3", objects=["z"])
        db.load({"x": 0, "y": 0, "z": 0})
        db.declare_reads("F_acyclic", fragments=["F_leaf"])
        return db

    def test_routes_by_fragment(self):
        acyclic = AcyclicReadsStrategy()
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(), {"F_acyclic": acyclic}
        )
        db = self.make_db(combined)
        db.finalize()
        # An undeclared cross-fragment read on the acyclic fragment is
        # vetoed...
        bad = db.submit_update(
            "a1",
            scripted_body([("r", "z"), ("w", "x", 1)]),
            reads=["z"],
            writes=["x"],
        )
        db.quiesce()
        assert bad.status is RequestStatus.ABORTED
        # ...while the same shape on the unrestricted fragment sails.
        ok = db.submit_update(
            "a3",
            scripted_body([("r", "x"), ("w", "z", 1)]),
            reads=["x"],
            writes=["z"],
        )
        db.quiesce()
        assert ok.succeeded

    def test_component_validation(self):
        acyclic = AcyclicReadsStrategy()
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(), {"F_acyclic": acyclic}
        )
        db = self.make_db(combined)
        # Poison the acyclic fragment's component with an antiparallel
        # edge; the unrestricted fragments are allowed to be cyclic,
        # the §4.2-assigned one is not.
        db.declare_reads("F_leaf", fragments=["F_acyclic"])
        with pytest.raises(DesignError):
            db.finalize()

    def test_cyclic_pattern_elsewhere_is_fine(self):
        acyclic = AcyclicReadsStrategy()
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(), {"F_acyclic": acyclic}
        )
        db = self.make_db(combined)
        # A cycle between unrestricted fragments only: F_free <-> a new
        # fragment would be needed; reuse F_free with a self-pattern via
        # F_leaf? F_leaf is in F_acyclic's component, so use F_free and
        # the default-strategy fragments are unconstrained.
        db.declare_reads("F_free", fragments=["F_free"])  # no-op self
        db.finalize()  # no raise

    def test_mixed_guarantees_end_to_end(self):
        read_locks = ReadLocksStrategy(lock_timeout=40.0, retry_interval=2.0)
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(),
            {"F_acyclic": AcyclicReadsStrategy(), "F_leaf": read_locks},
        )
        db = self.make_db(combined)
        db.finalize()
        db.submit_update("a2", write_body("y", 5), writes=["y"])
        db.quiesce()
        t1 = db.submit_update(
            "a1",
            scripted_body([("r", "y"), ("w", "x", 1)]),
            reads=["y"],
            writes=["x"],
        )
        t3 = db.submit_update(
            "a3",
            scripted_body([("r", "x"), ("w", "z", 9)]),
            reads=["x"],
            writes=["z"],
        )
        db.quiesce()
        assert t1.succeeded and t3.succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_read_locks_fragment_blocks_during_partition(self):
        read_locks = ReadLocksStrategy(lock_timeout=15.0, retry_interval=2.0)
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(), {"F_free": read_locks}
        )
        db = self.make_db(combined)
        db.finalize()
        db.partitions.partition_now([["A", "C"], ["B"]])
        # F_free's strategy is read-locks: a3 reading y must reach B.
        blocked = db.submit_update(
            "a3",
            scripted_body([("r", "y"), ("w", "z", 1)]),
            reads=["y"],
            writes=["z"],
        )
        # F_acyclic's default-routed sibling keeps working locally.
        free = db.submit_update(
            "a1",
            scripted_body([("r", "y"), ("w", "x", 1)]),
            reads=["y"],
            writes=["x"],
        )
        db.run(until=30)
        assert blocked.status is RequestStatus.TIMED_OUT
        assert free.succeeded

    def test_duplicate_handler_strategies_rejected(self):
        with pytest.raises(DesignError):
            CombinedStrategy(
                UnrestrictedReadsStrategy(),
                {
                    "F1": ReadLocksStrategy(),
                    "F2": ReadLocksStrategy(),  # second instance: collision
                },
            )

    def test_shared_handler_instance_allowed(self):
        shared = ReadLocksStrategy()
        CombinedStrategy(
            UnrestrictedReadsStrategy(), {"F1": shared, "F2": shared}
        )

    def test_unknown_fragment_rejected_at_finalize(self):
        combined = CombinedStrategy(
            UnrestrictedReadsStrategy(), {"GHOST": AcyclicReadsStrategy()}
        )
        db = FragmentedDatabase(["A"], strategy=combined)
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        with pytest.raises(DesignError):
            db.finalize()


class TestPartialReplication:
    def make_db(self):
        db = FragmentedDatabase(["A", "B", "C"])
        db.add_agent("ag", home_node="A")
        db.add_agent("other", home_node="B")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.add_fragment("G", agent="other", objects=["y"])
        db.set_replication("F", ["A", "B"])  # C does not replicate F
        db.load({"x": 0, "y": 0})
        db.finalize()
        return db

    def test_load_respects_replica_sets(self):
        db = self.make_db()
        assert db.nodes["A"].store.exists("x")
        assert db.nodes["B"].store.exists("x")
        assert not db.nodes["C"].store.exists("x")
        assert db.nodes["C"].store.exists("y")  # G fully replicated

    def test_updates_multicast_only_to_replica_set(self):
        db = self.make_db()
        before = db.network.messages_by_kind.get("qt", 0)
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 7
        assert not db.nodes["C"].store.exists("x")
        # C is not in F's replica set: it never even receives the
        # quasi-transaction (multicast, not broadcast-then-skip).
        assert db.nodes["C"].quasi_skipped == 0
        assert db.network.messages_by_kind.get("qt", 0) - before == 1

    def test_mutual_consistency_over_common_objects(self):
        db = self.make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.submit_update("other", write_body("y", 9), writes=["y"])
        db.quiesce()
        report = db.mutual_consistency()
        assert report.consistent  # C's missing x is not divergence

    def test_reading_at_non_replicating_node_uses_quorum(self):
        db = self.make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        observed = []
        tracker = db.submit_readonly(
            "other",
            scripted_body([("r", "x")], collect=observed),
            at="C",
            reads=["x"],
        )
        db.quiesce()
        assert tracker.succeeded
        assert observed == [("x", 7)]
        assert db.metrics.value("quorum.served") == 1

    def test_undeclared_nonlocal_read_still_fails_loudly(self):
        db = self.make_db()
        with pytest.raises(ReproError):
            db.submit_readonly("other", scripted_body([("r", "x")]), at="C")

    def test_replica_set_must_include_agent_home(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        with pytest.raises(DesignError):
            db.set_replication("F", ["B"])

    def test_unknown_nodes_rejected(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        with pytest.raises(DesignError):
            db.set_replication("F", ["A", "Z"])

    def test_partition_and_heal_with_partial_replication(self):
        db = self.make_db()
        db.partitions.partition_now([["A"], ["B", "C"]])
        db.submit_update("ag", write_body("x", 3), writes=["x"])
        db.run(until=10)
        assert db.nodes["B"].store.read("x") == 0
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 3
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
