"""Tests for the Section 1 comparison baselines.

Includes deterministic reproductions of the paper's two banking
scenarios (two $100 withdrawals / two $200 withdrawals on a $300
account, one per side of a severed link) and the "divergent fines"
chaos discussion.
"""

from repro.baselines import (
    LogTransformSystem,
    MutualExclusionSystem,
    Operation,
    OptimisticSystem,
)
from repro.cc.ops import Read, Write


def withdraw_body(account, amount):
    def body(_ctx):
        balance = yield Read(f"bal:{account}")
        if balance >= amount:
            yield Write(f"bal:{account}", balance - amount)
            return ("granted", amount)
        return ("refused", balance)

    return body


def banking_apply(state, op):
    key = f"bal:{op.params['account']}"
    if op.kind == "deposit":
        state[key] = state.get(key, 0.0) + op.params["amount"]
    elif op.kind == "withdraw":
        if op.params.get("granted", True):
            state[key] = state.get(key, 0.0) - op.params["amount"]
    elif op.kind == "fine":
        state[key] = state.get(key, 0.0) - op.params["amount"]


class TestMutualExclusion:
    def make(self):
        system = MutualExclusionSystem(["A", "B"], token_node="A")
        system.load({"bal:1": 300.0})
        return system

    def test_scenario_1_one_customer_goes_home_empty_handed(self):
        """Two $100 withdrawals during a partition: only A's succeeds."""
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        at_a = system.submit("A", withdraw_body("1", 100))
        at_b = system.submit("B", withdraw_body("1", 100))
        system.quiesce()
        assert at_a.committed
        assert at_a.result == ("granted", 100)
        assert at_b.rejected  # "goes home empty-handed"
        system.partitions.heal_now()
        system.quiesce()
        assert system.stores["B"].read("bal:1") == 200.0
        assert system.mutual_consistency().consistent

    def test_scenario_2_no_overdraft_possible(self):
        """Two $200 withdrawals: consistency preserved, service lost."""
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        at_a = system.submit("A", withdraw_body("1", 200))
        at_b = system.submit("B", withdraw_body("1", 200))
        system.partitions.heal_now()
        system.quiesce()
        assert at_a.committed and at_b.rejected
        assert system.stores["A"].read("bal:1") == 100.0  # never negative

    def test_availability_metric(self):
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        system.submit("A", withdraw_body("1", 10))
        system.submit("B", withdraw_body("1", 10))
        assert system.availability == 0.5

    def test_all_available_when_connected(self):
        system = self.make()
        for node in ("A", "B"):
            system.submit(node, withdraw_body("1", 10))
        system.quiesce()
        assert system.availability == 1.0
        assert system.mutual_consistency().consistent

    def test_global_order_no_lost_updates(self):
        system = self.make()
        for _ in range(3):
            system.submit("A", withdraw_body("1", 50))
            system.quiesce()
            system.submit("B", withdraw_body("1", 50))
            system.quiesce()
        assert system.stores["A"].read("bal:1") == 0.0
        assert system.mutual_consistency().consistent


class TestLogTransform:
    def make(self, correct=True, divergent=False):
        def correct_fn(state, _ops):
            corrections = []
            if state.get("bal:1", 0.0) < 0:
                corrections.append(
                    Operation(
                        "fine:1", "fine",
                        {"account": "1", "amount": 25.0},
                        float("inf"), "reconciler",
                    )
                )
            return corrections

        system = LogTransformSystem(
            ["A", "B"],
            banking_apply,
            correct_fn=correct_fn if correct else None,
            divergent_fines=divergent,
        )
        system.load({"bal:1": 300.0})
        return system

    def submit_withdraw(self, system, node, amount):
        granted = system.states[node]["bal:1"] >= amount
        return system.submit(
            node, "withdraw",
            {"account": "1", "amount": amount, "granted": granted},
        )

    def test_scenario_1_consistent_execution_no_correction(self):
        """Two $100 withdrawals happen to be consistent after merge."""
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        self.submit_withdraw(system, "A", 100)
        self.submit_withdraw(system, "B", 100)
        system.partitions.heal_now()
        system.quiesce()
        report = system.reconcile()
        assert report.corrective_ops == []
        assert system.states["A"]["bal:1"] == 100.0
        assert system.mutual_consistency().consistent

    def test_scenario_2_overdraft_detected_and_fined(self):
        """Two $200 withdrawals: both granted, merge goes negative."""
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        at_a = self.submit_withdraw(system, "A", 200)
        at_b = self.submit_withdraw(system, "B", 200)
        assert at_a.params["granted"] and at_b.params["granted"]
        system.partitions.heal_now()
        system.quiesce()
        report = system.reconcile()
        assert len(report.corrective_ops) == 1  # the fine
        assert system.states["A"]["bal:1"] == -125.0  # -100 - 25 fine
        assert system.mutual_consistency().consistent

    def test_full_availability(self):
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        for _ in range(5):
            self.submit_withdraw(system, "B", 10)
        assert system.availability == 1.0

    def test_overhead_counted(self):
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        self.submit_withdraw(system, "A", 10)
        self.submit_withdraw(system, "B", 10)
        system.partitions.heal_now()
        system.quiesce()
        report = system.reconcile()
        assert report.logs_exchanged == 4  # 2 ops known at 2 nodes
        assert report.ops_replayed == 2
        assert report.messages == 2  # n*(n-1) log exchanges

    def test_divergent_fines_chaos(self):
        """Section 1's chaos: overdraft-size-dependent fines diverge.

        The fine depends on the overdraft at the moment a node first
        saw the balance go negative — and the nodes experienced the
        operations in different local orders, so they see different
        overdraft depths and assess different fines.  "This, in turn,
        can lead to another round of assessing different fines, and
        chaos ensues."
        """

        def size_dependent_fine(state, ops):
            balance = 300.0
            first_negative = None
            for op in ops:  # local arrival order
                if op.kind == "deposit":
                    balance += op.params["amount"]
                elif op.kind == "withdraw" and op.params.get("granted", True):
                    balance -= op.params["amount"]
                if balance < 0 and first_negative is None:
                    first_negative = balance
            if first_negative is None:
                return []
            return [
                Operation(
                    f"fine:{abs(first_negative)}", "fine",
                    {"account": "1", "amount": 0.1 * abs(first_negative)},
                    float("inf"), "local",
                )
            ]

        system = LogTransformSystem(
            ["A", "B", "C"], banking_apply,
            correct_fn=size_dependent_fine, divergent_fines=True,
        )
        system.load({"bal:1": 300.0})
        system.partitions.partition_now([["A", "C"], ["B"]])
        # A side spends 150 + 50; B side spends 250.
        self.submit_withdraw(system, "A", 150)
        system.quiesce()
        self.submit_withdraw(system, "B", 250)
        system.quiesce()
        self.submit_withdraw(system, "C", 50)
        system.quiesce()
        system.partitions.heal_now()
        system.quiesce()
        system.reconcile()
        # A first saw the balance dip by 150 (it had already applied its
        # side's ops); B first saw a 100 dip.  Different fines, replicas
        # permanently disagreeing — the paper's chaos.
        assert not system.mutual_consistency().consistent

    def test_propagation_within_partition_group(self):
        system = LogTransformSystem(["A", "B", "C"], banking_apply)
        system.load({"bal:1": 300.0})
        system.partitions.partition_now([["A", "B"], ["C"]])
        system.submit("A", "deposit", {"account": "1", "amount": 50.0})
        system.quiesce()
        assert system.states["B"]["bal:1"] == 350.0  # same side
        assert system.states["C"]["bal:1"] == 300.0  # severed


class TestOptimistic:
    def make(self):
        def read_write(op):
            key = f"bal:{op.params['account']}"
            return {key}, {key}

        system = OptimisticSystem(["A", "B"], banking_apply, read_write)
        system.load({"bal:1": 300.0})
        return system

    def submit_withdraw(self, system, node, amount):
        granted = system.states[node]["bal:1"] >= amount
        return system.submit(
            node, "withdraw",
            {"account": "1", "amount": amount, "granted": granted},
        )

    def test_cross_partition_conflict_backs_out(self):
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        self.submit_withdraw(system, "A", 200)
        self.submit_withdraw(system, "B", 200)
        system.partitions.heal_now()
        report = system.validate_and_merge()
        assert report.backout_count == 1
        assert system.effective_availability == 0.5
        assert system.states["A"]["bal:1"] == 100.0  # one withdrawal stands
        assert system.mutual_consistency().consistent

    def test_no_conflicts_all_stand(self):
        system = self.make()
        self.submit_withdraw(system, "A", 100)
        system.run()
        self.submit_withdraw(system, "B", 100)
        report = system.validate_and_merge()
        assert report.backout_count == 0
        assert system.states["A"]["bal:1"] == 100.0

    def test_disjoint_accounts_no_backout_across_partition(self):
        def read_write(op):
            key = f"bal:{op.params['account']}"
            return {key}, {key}

        system = OptimisticSystem(["A", "B"], banking_apply, read_write)
        system.load({"bal:1": 300.0, "bal:2": 300.0})
        system.partitions.partition_now([["A"], ["B"]])
        system.submit(
            "A", "withdraw", {"account": "1", "amount": 100, "granted": True}
        )
        system.submit(
            "B", "withdraw", {"account": "2", "amount": 100, "granted": True}
        )
        report = system.validate_and_merge()
        assert report.backout_count == 0

    def test_backout_is_youngest(self):
        system = self.make()
        system.partitions.partition_now([["A"], ["B"]])
        first = self.submit_withdraw(system, "A", 200)
        system.sim.run(until=10.0)
        second = self.submit_withdraw(system, "B", 200)
        report = system.validate_and_merge()
        assert report.backed_out == [second.op_id]
        assert first.op_id not in report.backed_out
