"""Tests for topology, network delivery, partitions, and broadcast."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    Network,
    PartitionManager,
    PartitionSpec,
    ReliableBroadcast,
    Topology,
)
from repro.sim import Simulator


def make_net(nodes=("A", "B", "C"), latency=1.0, topology=None):
    sim = Simulator()
    topo = topology or Topology.full_mesh(nodes, latency)
    return sim, topo, Network(sim, topo)


class TestTopology:
    def test_full_mesh_links(self):
        topo = Topology.full_mesh(["a", "b", "c"])
        assert len(topo.links) == 3

    def test_star_links(self):
        topo = Topology.star("hub", ["l1", "l2", "l3"])
        assert len(topo.links) == 3
        assert set(topo.neighbors("hub")) == {"l1", "l2", "l3"}

    def test_line_links(self):
        topo = Topology.line(["a", "b", "c", "d"])
        assert len(topo.links) == 3
        assert topo.neighbors("b") == ["a", "c"]

    def test_path_latency_multi_hop(self):
        topo = Topology.line(["a", "b", "c"], latency=2.0)
        assert topo.path_latency("a", "c") == 4.0
        assert topo.path_latency("a", "a") == 0.0

    def test_path_latency_prefers_cheapest(self):
        topo = Topology(["a", "b", "c"])
        topo.add_link("a", "b", 10.0)
        topo.add_link("a", "c", 1.0)
        topo.add_link("c", "b", 1.0)
        assert topo.path_latency("a", "b") == 2.0

    def test_reachability_respects_down_links(self):
        topo = Topology.line(["a", "b", "c"])
        assert topo.reachable("a", "c")
        topo.set_link_up("b", "c", False)
        assert not topo.reachable("a", "c")
        assert topo.reachable("a", "b")

    def test_cut_and_heal(self):
        topo = Topology.full_mesh(["a", "b", "c", "d"])
        cut = topo.cut({"a", "b"}, {"c", "d"})
        assert cut == 4
        assert not topo.reachable("a", "c")
        assert topo.reachable("a", "b")
        healed = topo.heal()
        assert healed == 4
        assert topo.reachable("a", "c")

    def test_components(self):
        topo = Topology.full_mesh(["a", "b", "c", "d"])
        topo.cut({"a"}, {"b", "c", "d"})
        comps = sorted(topo.components(), key=len)
        assert comps[0] == {"a"}
        assert comps[1] == {"b", "c", "d"}

    def test_errors(self):
        topo = Topology(["a", "b"])
        with pytest.raises(NetworkError):
            topo.add_link("a", "zzz")
        with pytest.raises(NetworkError):
            topo.add_link("a", "a")
        topo.add_link("a", "b")
        with pytest.raises(NetworkError):
            topo.add_link("a", "b")
        with pytest.raises(NetworkError):
            topo.link("a", "nope")
        with pytest.raises(NetworkError):
            Topology(["x"]).path_latency("x", "nope")


class TestNetworkDelivery:
    def test_basic_delivery_with_latency(self):
        sim, topo, net = make_net(latency=3.0)
        received = []
        net.register("B", lambda m: received.append((sim.now, m.payload)))
        net.register("A", lambda m: None)
        net.send("A", "B", "test", {"x": 1})
        sim.run()
        assert received == [(3.0, {"x": 1})]

    def test_channel_fifo_despite_route_change(self):
        # A message sent over a slow route must not overtake an earlier
        # one after the route gets faster.
        sim = Simulator()
        topo = Topology(["a", "b", "c"])
        topo.add_link("a", "c", 10.0)
        topo.add_link("a", "b", 1.0)
        topo.add_link("b", "c", 1.0)
        net = Network(sim, topo)
        received = []
        net.register("c", lambda m: received.append(m.payload))
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        topo.set_link_up("a", "b", False)  # force the slow route
        net.send("a", "c", "m", 1)
        topo.set_link_up("a", "b", True)  # fast route back
        net.send("a", "c", "m", 2)
        sim.run()
        assert received == [1, 2]

    def test_held_across_partition_and_released(self):
        sim, topo, net = make_net(["A", "B"])
        received = []
        net.register("B", lambda m: received.append(sim.now))
        net.register("A", lambda m: None)
        manager = PartitionManager(net)
        manager.partition_now([["A"], ["B"]])
        net.send("A", "B", "m", "hello")
        sim.run()
        assert received == []
        assert net.held_count() == 1
        manager.heal_now()
        sim.run()
        assert len(received) == 1
        assert net.held_count() == 0

    def test_message_in_flight_when_partition_forms_is_held(self):
        sim, topo, net = make_net(["A", "B"], latency=5.0)
        received = []
        net.register("B", lambda m: received.append(sim.now))
        net.register("A", lambda m: None)
        manager = PartitionManager(net)
        net.send("A", "B", "m", 1)  # would deliver at t=5
        sim.schedule(2.0, lambda: manager.partition_now([["A"], ["B"]]))
        sim.schedule(20.0, manager.heal_now)
        sim.run()
        assert len(received) == 1
        assert received[0] >= 20.0  # not lost, delivered after the heal

    def test_stats_and_errors(self):
        sim, topo, net = make_net(["A", "B"])
        net.register("A", lambda m: None)
        net.register("B", lambda m: None)
        with pytest.raises(NetworkError):
            net.register("A", lambda m: None)
        net.send("A", "B", "kind1", 1)
        net.send("A", "B", "kind1", 2)
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2
        assert net.messages_by_kind["kind1"] == 2

    def test_loopback_delivers_via_zero_latency_event(self):
        sim, topo, net = make_net(["A", "B"])
        received = []
        net.register("A", lambda m: received.append(m))
        net.register("B", lambda m: None)
        message = net.send("A", "A", "self-note", 42)
        # Asynchronous: nothing delivered until the simulator runs.
        assert received == []
        sim.run()
        assert [m.payload for m in received] == [42]
        assert received[0].src == "A" and received[0].dst == "A"
        assert message.delivered_at == 0.0
        assert net.messages_sent == 1
        assert net.messages_delivered == 1

    def test_loopback_ignores_partitions_and_counts_by_kind(self):
        sim, topo, net = make_net(["A", "B"])
        received = []
        net.register("A", lambda m: received.append(sim.now))
        net.register("B", lambda m: None)
        manager = PartitionManager(net)
        manager.partition_now([["A"], ["B"]])
        net.send("A", "A", "self-note", 1)
        sim.run()
        assert received == [0.0]  # a node is never partitioned from itself
        assert net.held_count() == 0
        assert net.messages_by_kind["self-note"] == 1


class TestPartitionSpec:
    def test_duration_and_validation(self):
        spec = PartitionSpec(10.0, 30.0, [["a"], ["b"]])
        assert spec.duration == 20.0
        with pytest.raises(NetworkError):
            PartitionSpec(10.0, 10.0, [["a"], ["b"]])

    def test_overlapping_groups_rejected(self):
        sim, topo, net = make_net()
        manager = PartitionManager(net)
        with pytest.raises(NetworkError):
            manager.partition_now([["A", "B"], ["B", "C"]])

    def test_scheduled_episode(self):
        sim, topo, net = make_net(["A", "B"])
        net.register("A", lambda m: None)
        net.register("B", lambda m: None)
        manager = PartitionManager(net)
        manager.install([PartitionSpec(5.0, 15.0, [["A"], ["B"]], "ep1")])
        sim.run(until=6.0)
        assert not topo.reachable("A", "B")
        sim.run(until=16.0)
        assert topo.reachable("A", "B")
        assert manager.partitions_applied == 1
        assert manager.heals_applied == 1


class TestReliableBroadcast:
    def make(self, nodes=("A", "B", "C"), fifo=True):
        sim = Simulator()
        topo = Topology.full_mesh(nodes)
        net = Network(sim, topo)
        bcast = ReliableBroadcast(net, fifo=fifo)
        logs = {n: [] for n in nodes}
        for n in nodes:
            bcast.attach(n, lambda s, q, b, n=n: logs[n].append((s, q, b)))
        return sim, net, bcast, logs

    def test_sender_delivers_to_self_synchronously(self):
        sim, net, bcast, logs = self.make()
        bcast.broadcast("A", "hello")
        assert logs["A"] == [("A", 0, "hello")]
        assert logs["B"] == []
        sim.run()
        assert logs["B"] == [("A", 0, "hello")]

    def test_per_sender_fifo_order(self):
        sim, net, bcast, logs = self.make()
        for i in range(5):
            bcast.broadcast("A", i)
        sim.run()
        for node in logs:
            assert [b for (_s, _q, b) in logs[node]] == [0, 1, 2, 3, 4]

    def test_order_preserved_across_partition(self):
        sim, net, bcast, logs = self.make(("A", "B"))
        manager = PartitionManager(net)
        bcast.broadcast("A", "before")
        sim.run()  # "before" delivered while connected
        assert [b for (_s, _q, b) in logs["B"]] == ["before"]
        manager.partition_now([["A"], ["B"]])
        bcast.broadcast("A", "during-1")
        bcast.broadcast("A", "during-2")
        sim.run()
        assert [b for (_s, _q, b) in logs["B"]] == ["before"]
        manager.heal_now()
        sim.run()
        assert [b for (_s, _q, b) in logs["B"]] == [
            "before",
            "during-1",
            "during-2",
        ]

    def test_in_flight_broadcast_held_not_lost(self):
        sim, net, bcast, logs = self.make(("A", "B"))
        manager = PartitionManager(net)
        bcast.broadcast("A", "in-flight")  # would deliver at t=1
        manager.partition_now([["A"], ["B"]])  # forms at t=0
        sim.run()
        assert logs["B"] == []  # held, not delivered
        manager.heal_now()
        sim.run()
        assert [b for (_s, _q, b) in logs["B"]] == ["in-flight"]

    def test_out_of_order_buffering(self):
        sim, net, bcast, logs = self.make(("A", "B"))
        # Inject seq 1 before seq 0 manually via the wire format.
        from repro.net.broadcast import SeqPayload

        bcast._process("B", SeqPayload("A", 1, "k", "second"))
        assert logs["B"] == []
        assert bcast.out_of_order_buffered == 1
        bcast._process("B", SeqPayload("A", 0, "k", "first"))
        assert [b for (_s, _q, b) in logs["B"]] == ["first", "second"]

    def test_duplicates_dropped(self):
        from repro.net.broadcast import SeqPayload

        sim, net, bcast, logs = self.make(("A", "B"))
        bcast._process("B", SeqPayload("A", 0, "k", "x"))
        bcast._process("B", SeqPayload("A", 0, "k", "x"))
        assert len(logs["B"]) == 1

    def test_non_fifo_mode_delivers_immediately(self):
        from repro.net.broadcast import SeqPayload

        sim, net, bcast, logs = self.make(("A", "B"), fifo=False)
        bcast._process("B", SeqPayload("A", 5, "k", "later"))
        bcast._process("B", SeqPayload("A", 0, "k", "earlier"))
        assert [b for (_s, _q, b) in logs["B"]] == ["later", "earlier"]

    def test_interleaved_senders_fifo_per_sender(self):
        sim, net, bcast, logs = self.make()
        bcast.broadcast("A", "a0")
        bcast.broadcast("B", "b0")
        bcast.broadcast("A", "a1")
        bcast.broadcast("B", "b1")
        sim.run()
        for node in logs:
            from_a = [b for (s, _q, b) in logs[node] if s == "A"]
            from_b = [b for (s, _q, b) in logs[node] if s == "B"]
            assert from_a == ["a0", "a1"]
            assert from_b == ["b0", "b1"]
