"""Unit tests for the availability accountant on synthetic event streams."""

import json

from repro.obs import taxonomy
from repro.obs.availability import (
    AvailabilityAccountant,
    account_events,
    account_trace,
)


def catalog(
    fragments=None,
    agents=None,
    nodes=("N0", "N1", "N2"),
    t=0.0,
):
    """A minimal system.catalog event."""
    if fragments is None:
        fragments = {"F": {"agent": "ag", "replicas": list(nodes)}}
    if agents is None:
        agents = {"ag": nodes[0]}
    return {
        "type": taxonomy.SYSTEM_CATALOG,
        "t": t,
        "fragments": fragments,
        "agents": agents,
        "nodes": list(nodes),
    }


def ev(etype, t, **fields):
    return {"type": etype, "t": t, **fields}


class TestWriteWindows:
    def test_crash_opens_and_recover_closes(self):
        acc = account_events(
            [
                catalog(),
                ev(taxonomy.NODE_CRASH, 10.0, node="N0"),
                ev(taxonomy.NODE_RECOVER, 35.0, node="N0"),
            ],
            end_time=100.0,
        )
        windows = [w for w in acc.windows if w.dimension == "write"]
        assert len(windows) == 1
        window = windows[0]
        assert (window.fragment, window.start, window.end) == ("F", 10.0, 35.0)
        assert window.primary == "crash"

    def test_unrecovered_crash_stays_open_until_finish(self):
        acc = account_events(
            [catalog(), ev(taxonomy.NODE_CRASH, 10.0, node="N0")],
            end_time=60.0,
        )
        windows = [w for w in acc.windows if w.dimension == "write"]
        assert len(windows) == 1
        assert windows[0].end == 60.0
        assert windows[0].duration(acc.now) == 50.0

    def test_crash_of_non_home_node_does_not_block_writes(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog())
        acc.feed(ev(taxonomy.NODE_CRASH, 10.0, node="N2"))
        assert not acc.unavailable("F", "write")

    def test_token_transit_depart_and_arrive(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog())
        acc.feed(
            ev(taxonomy.TOKEN_MOVE_DEPART, 5.0, agent="ag", src="N0",
               dst="N1", fragments=["F"])
        )
        assert acc.unavailable("F", "write")
        assert acc.active_causes("F", "write") == {"transit"}
        acc.feed(
            ev(taxonomy.TOKEN_MOVE_ARRIVE, 8.0, agent="ag", src="N0",
               dst="N1", fragments=["F"])
        )
        assert not acc.unavailable("F", "write")
        assert acc.agent_home["ag"] == "N1"
        acc.finish(20.0)
        assert [w.as_dict() for w in acc.windows if w.dimension == "write"] == [
            {
                "fragment": "F",
                "dimension": "write",
                "start": 5.0,
                "end": 8.0,
                "causes": ["transit"],
                "primary": "transit",
            }
        ]

    def test_failover_merges_into_the_crash_window(self):
        acc = account_events(
            [
                catalog(),
                ev(taxonomy.NODE_CRASH, 10.0, node="N0"),
                ev(taxonomy.AVAIL_SUSPECT, 14.0, agent="ag", node="N0"),
                ev(taxonomy.AVAIL_FAILOVER_BEGIN, 15.0, agent="ag",
                   fragments=["F"]),
                ev(taxonomy.TOKEN_MOVE_DEPART, 16.0, agent="ag", src="N0",
                   dst="N1", fragments=["F"]),
                ev(taxonomy.TOKEN_MOVE_ARRIVE, 19.0, agent="ag", src="N0",
                   dst="N1", fragments=["F"]),
                ev(taxonomy.AVAIL_FAILOVER_DONE, 19.0, agent="ag",
                   failed_home="N0", successor="N1"),
            ],
            end_time=100.0,
        )
        windows = [w for w in acc.windows if w.dimension == "write"]
        assert len(windows) == 1
        window = windows[0]
        # One contiguous outage from the crash to the token landing on
        # the live successor — labelled by the highest-priority cause.
        assert (window.start, window.end) == (10.0, 19.0)
        assert window.causes == {"crash", "transit", "failover"}
        assert window.primary == "crash"

    def test_failover_abort_releases_the_failover_cause(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog())
        acc.feed(ev(taxonomy.AVAIL_FAILOVER_BEGIN, 5.0, agent="ag",
                    fragments=["F"]))
        assert acc.active_causes("F", "write") == {"failover"}
        acc.feed(ev(taxonomy.AVAIL_FAILOVER_ABORT, 7.0, agent="ag",
                    reason="no quorum"))
        assert not acc.unavailable("F", "write")

    def test_backpressure_is_refcounted(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog())
        acc.feed(ev(taxonomy.BACKPRESSURE_ENGAGE, 1.0, fragment="F"))
        acc.feed(ev(taxonomy.BACKPRESSURE_ENGAGE, 2.0, fragment="F"))
        acc.feed(ev(taxonomy.BACKPRESSURE_RELEASE, 3.0, fragment="F"))
        assert acc.unavailable("F", "write")  # one engage still held
        acc.feed(ev(taxonomy.BACKPRESSURE_RELEASE, 4.0, fragment="F"))
        assert not acc.unavailable("F", "write")
        acc.finish(10.0)
        assert acc.fragment_summary("F", "write")["by_cause"] == {
            "backpressure": 3.0
        }


class TestReadWindows:
    def test_partition_strands_the_quorum(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog(nodes=("N0", "N1", "N2")))
        acc.feed(
            ev(taxonomy.PARTITION_CUT, 10.0, label="p",
               groups=[["N0"], ["N1"], ["N2"]])
        )
        assert acc.unavailable("F", "read")
        assert acc.active_causes("F", "read") == {"partition"}
        acc.feed(ev(taxonomy.PARTITION_HEAL, 25.0, label="p"))
        assert not acc.unavailable("F", "read")
        acc.finish(50.0)
        reads = [w for w in acc.windows if w.dimension == "read"]
        assert [(w.start, w.end, w.primary) for w in reads] == [
            (10.0, 25.0, "partition")
        ]

    def test_majority_component_keeps_reads_available(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog(nodes=("N0", "N1", "N2")))
        acc.feed(
            ev(taxonomy.PARTITION_CUT, 10.0, label="p",
               groups=[["N0", "N1"], ["N2"]])
        )
        assert not acc.unavailable("F", "read")

    def test_heal_now_clears_every_episode(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog(nodes=("N0", "N1", "N2")))
        acc.feed(ev(taxonomy.PARTITION_CUT, 5.0, label="a",
                    groups=[["N0"], ["N1"], ["N2"]]))
        acc.feed(ev(taxonomy.PARTITION_CUT, 6.0, label="b",
                    groups=[["N0"], ["N1", "N2"]]))
        assert acc.unavailable("F", "read")
        acc.feed(ev(taxonomy.PARTITION_HEAL, 9.0, label="(now)"))
        assert not acc.unavailable("F", "read")

    def test_majority_of_replicas_down_blocks_reads(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog(nodes=("N0", "N1", "N2")))
        acc.feed(ev(taxonomy.NODE_CRASH, 10.0, node="N1"))
        assert not acc.unavailable("F", "read")
        acc.feed(ev(taxonomy.NODE_CRASH, 12.0, node="N2"))
        assert acc.active_causes("F", "read") == {"crash"}
        acc.feed(ev(taxonomy.NODE_RECOVER, 30.0, node="N1"))
        assert not acc.unavailable("F", "read")

    def test_syncing_joiners_do_not_count_and_attribute_reconfig(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog(nodes=("N0", "N1", "N2")))
        # Widen F to five replicas, two still syncing: countable is
        # {N0,N1,N2}, quorum 2.  Kill two countable replicas — the
        # widened set would still have its quorum (3 of 5 live), so the
        # outage is attributed to the membership change in progress.
        acc.feed(
            ev(taxonomy.SYSTEM_RECONFIG, 5.0, fragment="F",
               replicas=["N0", "N1", "N2", "N3", "N4"],
               syncing=["N3", "N4"])
        )
        acc.feed(ev(taxonomy.NODE_CRASH, 10.0, node="N1"))
        acc.feed(ev(taxonomy.NODE_CRASH, 11.0, node="N2"))
        assert acc.active_causes("F", "read") == {"reconfig"}
        # Once a joiner finishes syncing it counts: {N0,N3,N4} live of
        # countable {N0,N1,N2,N3} -> quorum 3 reachable? countable size
        # 4, quorum 3, live countable = N0,N3 -> still short; sync both.
        acc.feed(ev(taxonomy.RECONFIG_SYNCED, 20.0, fragment="F", node="N3"))
        acc.feed(ev(taxonomy.RECONFIG_SYNCED, 21.0, fragment="F", node="N4"))
        assert not acc.unavailable("F", "read")

    def test_quorum_timeouts_are_point_incidents(self):
        acc = AvailabilityAccountant()
        acc.feed(catalog())
        acc.feed(ev(taxonomy.QUORUM_READ_TIMEOUT, 9.0, missing=["F"]))
        acc.feed(ev(taxonomy.QUORUM_READ_TIMEOUT, 11.0, missing=["F"]))
        acc.finish(20.0)
        assert acc.fragment_summary("F", "read")["quorum_timeouts"] == 2


class TestIncidentsAndSummaries:
    def failover_stream(self):
        return [
            catalog(),
            ev(taxonomy.NODE_CRASH, 10.0, node="N0"),
            ev(taxonomy.AVAIL_SUSPECT, 16.0, agent="ag", node="N0"),
            ev(taxonomy.AVAIL_FAILOVER_BEGIN, 16.0, agent="ag",
               fragments=["F"]),
            ev(taxonomy.TOKEN_MOVE_ARRIVE, 22.0, agent="ag", src="N0",
               dst="N1", fragments=["F"]),
            ev(taxonomy.AVAIL_FAILOVER_DONE, 22.0, agent="ag",
               failed_home="N0", successor="N1"),
        ]

    def test_mttd_mttr_decomposition(self):
        acc = account_events(self.failover_stream(), end_time=100.0)
        assert len(acc.incidents) == 1
        incident = acc.incidents[0]
        assert incident["mttd"] == 6.0  # crash 10 -> suspect 16
        assert incident["mttr"] == 12.0  # crash 10 -> done 22
        assert incident["successor"] == "N1"
        summary = acc.summary()
        assert summary["mttd_mean"] == 6.0
        assert summary["mttr_mean"] == 12.0
        assert summary["mttr_max"] == 12.0

    def test_fragment_summary_math(self):
        acc = account_events(self.failover_stream(), end_time=110.0)
        summary = acc.fragment_summary("F", "write")
        assert summary["observed"] == 110.0
        assert summary["unavailable"] == 12.0
        assert summary["availability"] == round(1.0 - 12.0 / 110.0, 6)
        assert summary["windows"] == 1
        assert summary["longest_window"] == 12.0
        # Cause-time integrates concurrent holds separately.
        assert summary["by_cause"]["crash"] == 12.0
        assert summary["by_cause"]["failover"] == 6.0

    def test_availability_and_worst_window(self):
        acc = account_events(self.failover_stream(), end_time=110.0)
        assert acc.worst_window("write") == 12.0
        assert acc.availability("write") == round(1.0 - 12.0 / 110.0, 6)
        assert acc.availability("read") == 1.0

    def test_pristine_trace_is_fully_available(self):
        acc = account_events([catalog()], end_time=50.0)
        assert acc.windows == []
        assert acc.availability("write") == 1.0
        assert acc.worst_window("write") == 0.0
        assert acc.summary()["mttr_mean"] is None

    def test_summary_is_json_serializable(self):
        acc = account_events(self.failover_stream(), end_time=100.0)
        json.dumps(acc.summary())  # must not raise


class TestTraceHelpers:
    def test_account_trace_groups_by_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = []
        for run in ("alpha", "beta"):
            records.append({**catalog(), "run": run})
            records.append(
                {**ev(taxonomy.NODE_CRASH, 10.0, node="N0"), "run": run}
            )
        records.append(
            {**ev(taxonomy.NODE_RECOVER, 30.0, node="N0"), "run": "beta"}
        )
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        accountants = account_trace(str(path))
        assert sorted(accountants) == ["alpha", "beta"]
        beta = [
            w for w in accountants["beta"].windows if w.dimension == "write"
        ]
        assert beta[0].end == 30.0

    def test_events_without_time_or_type_are_harmless(self):
        acc = account_events(
            [catalog(), {"type": "something.else"}, {"no_type": True}],
            end_time=5.0,
        )
        assert acc.events == 3
        assert acc.windows == []
