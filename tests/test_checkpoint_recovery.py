"""Tests for the checkpoint & anti-entropy catch-up subsystem.

Covers the four legs of the recovery design: durable per-fragment
checkpoints (restore = checkpoint + WAL suffix), cluster low-watermark
compaction (bounded archives/WALs, partition-aware grace), cursor-based
single-donor catch-up (delta rejoin), and checkpoint shipping for a
rejoiner that fell below the compaction horizon.
"""

from repro import (
    FragmentedDatabase,
    MoveWithDataProtocol,
    RecoveryConfig,
)
from repro.cc.ops import Read, Write
from repro.cli import main as cli_main
from repro.recovery import (
    CheckpointStore,
    FragmentCheckpoint,
    WatermarkTracker,
    build_checkpoint,
)
from repro.storage.values import Version


def make_db(nodes=("A", "B", "C"), recovery=None, **kwargs):
    db = FragmentedDatabase(list(nodes), recovery=recovery, **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x", "y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    return db


def bump(obj):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def _ckpt(fragment="F", upto=3, epoch=0, **objects):
    snapshot = {
        name: Version(value, f"T{name}", 1, 1.0)
        for name, value in (objects or {"x": 1}).items()
    }
    return FragmentCheckpoint(
        fragment=fragment, upto=upto, epoch=epoch,
        snapshot=snapshot, origin="A", taken_at=0.0,
    )


class TestCheckpointStore:
    def test_keeps_only_newest_per_fragment(self):
        shelf = CheckpointStore("A")
        assert shelf.put(_ckpt(upto=3))
        assert not shelf.put(_ckpt(upto=2))  # older cursor: refused
        assert shelf.put(_ckpt(upto=5, x=9))
        assert shelf.get("F").upto == 5
        assert len(shelf) == 1
        assert shelf.puts == 2

    def test_epoch_dominates_cursor_comparison(self):
        shelf = CheckpointStore("A")
        shelf.put(_ckpt(upto=9, epoch=0))
        assert shelf.put(_ckpt(upto=2, epoch=1))  # newer epoch wins
        assert shelf.get("F").cursor == (1, 2)

    def test_object_count_sums_fragments(self):
        shelf = CheckpointStore("A")
        shelf.put(_ckpt(x=1, y=2))
        shelf.put(_ckpt(fragment="G", upto=1, x=3))
        assert shelf.object_count() == 3
        assert [c.fragment for c in shelf.all()] == ["F", "G"]


class TestWatermarkTracker:
    def test_minimum_over_replicas_with_unheard_default(self):
        tracker = WatermarkTracker()
        tracker.note("F", "A", 5)
        tracker.note("F", "B", 7)
        # C never checkpointed: it holds the watermark at zero.
        assert tracker.watermark("F", ["A", "B", "C"], set()) == 0
        assert tracker.watermark("F", ["A", "B", "C"], {"C"}) == 5

    def test_marks_only_move_forward(self):
        tracker = WatermarkTracker()
        tracker.note("F", "A", 5)
        tracker.note("F", "A", 3)  # stale gossip must not rewind
        assert tracker.cursor("F", "A") == 5


class TestCheckpointRestore:
    def test_restore_is_checkpoint_plus_wal_suffix(self):
        db = make_db(recovery=RecoveryConfig(checkpoint_every=2))
        for _ in range(5):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        replica = db.nodes["B"]
        ckpt = replica.checkpoints.get("F")
        assert ckpt is not None and ckpt.upto >= 4
        # The WAL was truncated behind the checkpoint: far fewer records
        # than the 2 loads + 5 installs an untruncated log would hold.
        assert len(replica.wal) < 7
        restores_before = replica.checkpoints.restores
        db.fail_node("B")
        db.recover_node("B")
        db.quiesce()
        assert replica.checkpoints.restores > restores_before
        assert replica.store.read("x") == 5
        assert db.mutual_consistency().consistent

    def test_on_demand_checkpoint_via_manager(self):
        db = make_db()  # disarmed: no automatic cadence
        db.submit_update("ag", bump("y"), writes=["y"])
        db.quiesce()
        node = db.nodes["C"]
        ckpt = db.recovery.checkpoint_now(node, "F")
        assert ckpt.snapshot["y"].value == 1
        assert node.checkpoints.get("F") is ckpt
        assert db.metrics.value("recovery.checkpoints") == 1

    def test_build_checkpoint_cursor_matches_stream(self):
        db = make_db()
        for _ in range(3):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        node = db.nodes["A"]
        ckpt = build_checkpoint(db, node, "F")
        assert ckpt.upto == node.streams.next_expected["F"]
        assert set(ckpt.snapshot) == {"x", "y"}


class TestSingleDonorCatchup:
    def test_rejoin_admits_each_missing_install_once(self):
        """Regression for the N x-redundant recovery exchange.

        The old anti-entropy asked *every* peer for its full archive, so
        a rejoiner missing k installs admitted ~k x (n-1) quasi
        transactions and relied on dedup to discard the overlap.  The
        cursor-based protocol picks one donor and ships the gap once.
        """
        db = make_db()
        for _ in range(3):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        replica = db.nodes["B"]
        db.fail_node("B")
        # Middleware-gap idiom: the installs never reached the WAL.
        replica.wal._records = [
            r for r in replica.wal._records if r.kind == "load"
        ]
        admitted = []
        original = db.movement.admit

        def counting_admit(node, quasi):
            if node.name == "B":
                admitted.append((quasi.fragment, quasi.stream_seq))
            return original(node, quasi)

        db.movement.admit = counting_admit
        try:
            db.recover_node("B")
            db.quiesce()
        finally:
            db.movement.admit = original
        assert replica.store.read("x") == 3
        # Exactly the 3 missing installs, from exactly one donor — not
        # 6 (= 3 missing x 2 peers) as the all-peers exchange produced.
        assert sorted(admitted) == [("F", 0), ("F", 1), ("F", 2)]
        assert db.metrics.value("recovery.delta_qts_shipped") == 3

    def test_updates_during_downtime_ship_as_delta(self):
        db = make_db(recovery=RecoveryConfig(checkpoint_every=2, grace=None))
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("C")
        for _ in range(4):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.run(until=db.sim.now + 10)
        db.recover_node("C")
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 5
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        # grace=None pinned the watermark, so no checkpoint shipping.
        assert db.metrics.value("recovery.checkpoints_shipped") == 0


class TestWatermarkCompaction:
    def test_archives_stay_bounded_under_cadence(self):
        """E13-style sustained traffic: retained state must go flat."""
        db = make_db(recovery=RecoveryConfig(checkpoint_every=5))
        sizes = []
        for batch in range(6):
            for _ in range(10):
                db.submit_update("ag", bump("x"), writes=["x"])
            db.quiesce()
            sizes.append(db.metrics.value("recovery.archive_entries"))
        # Bounded: the second half of the run retains no more than the
        # first half plus one checkpoint interval of slack.
        assert max(sizes[3:]) <= max(sizes[:3]) + 5 * len(db.nodes)
        for node in db.nodes.values():
            assert len(node.streams.archive["F"]) <= 10
            assert len(node.wal) <= 12
        assert db.metrics.value("recovery.archive_pruned") > 0
        assert db.mutual_consistency().consistent

    def test_grace_none_pins_watermark_while_down(self):
        db = make_db(recovery=RecoveryConfig(checkpoint_every=3, grace=None))
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        cursor = db.nodes["C"].streams.next_expected["F"]
        db.fail_node("C")
        for _ in range(12):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        # Everything the downed replica is missing is still archived.
        donor_archive = db.nodes["A"].streams.archive["F"]
        missing = range(cursor, db.nodes["A"].streams.next_expected["F"])
        assert all(seq in donor_archive for seq in missing)

    def test_grace_exclusion_compacts_past_downed_cursor(self):
        db = make_db(recovery=RecoveryConfig(checkpoint_every=3, grace=20.0))
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        cursor = db.nodes["C"].streams.next_expected["F"]
        db.fail_node("C")
        for step in range(12):
            db.sim.schedule_at(
                db.sim.now + 5.0 * (step + 1),
                lambda: db.submit_update("ag", bump("x"), writes=["x"]),
            )
        db.quiesce()
        # The grace elapsed mid-run: the cluster compacted past the
        # downed replica's cursor.
        horizon = min(db.nodes["A"].streams.archive["F"], default=0)
        assert horizon > cursor


class TestSnapshotRejoin:
    def _run_far_behind_rejoin(self, trace_path=None):
        db = make_db(recovery=RecoveryConfig(checkpoint_every=3, grace=20.0))
        if trace_path is not None:
            db.enable_tracing(str(trace_path), context={"run": "rejoin@0"})
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("C")
        for step in range(12):
            db.sim.schedule_at(
                db.sim.now + 5.0 * (step + 1),
                lambda: db.submit_update("ag", bump("x"), writes=["x"]),
            )
        db.quiesce()
        db.recover_node("C")
        db.quiesce()
        return db

    def test_below_horizon_rejoin_ships_checkpoint_plus_tail(self):
        db = self._run_far_behind_rejoin()
        assert db.nodes["C"].store.read("x") == 13
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        assert db.metrics.value("recovery.checkpoints_shipped") >= 1
        assert db.metrics.value("recovery.snapshot_objects_shipped") >= 2
        # Shipped work scales with the gap, not the whole history: the
        # delta rode on top of the checkpoint, so it is strictly
        # smaller than the 12 missed installs.
        assert 0 < db.metrics.value("recovery.delta_qts_shipped") < 12

    def test_rejoin_trace_passes_offline_audit(self, tmp_path, capsys):
        trace = tmp_path / "rejoin.jsonl"
        db = self._run_far_behind_rejoin(trace_path=trace)
        db.tracer.close()
        assert cli_main(["audit", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "passed the audit" in out


class TestMoveWithDataDurability:
    def test_shipped_checkpoint_survives_destination_crash(self):
        """The carried fragment is durable at the new home.

        After a move-with-data, the destination's replica state came in
        on the token, not through its WAL.  The shipped checkpoint is
        persisted on arrival, so even with an empty WAL the new home
        recovers the carried values locally — no delta needs shipping.
        """
        db = make_db(movement=MoveWithDataProtocol())
        for _ in range(3):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.move_agent("ag", "B", transport_delay=1.0)
        db.quiesce()
        replica = db.nodes["B"]
        assert replica.checkpoints.get("F") is not None
        db.fail_node("B")
        replica.wal._records = []  # even the loads are gone
        db.recover_node("B")
        db.quiesce()
        assert replica.store.read("x") == 3
        assert db.mutual_consistency().consistent
        assert db.metrics.value("recovery.delta_qts_shipped") == 0

    def test_move_still_counts_carried_state(self):
        db = make_db(movement=MoveWithDataProtocol())
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.move_agent("ag", "C", transport_delay=1.0)
        db.quiesce()
        assert db.movement.snapshots_carried == 1
        assert db.movement.objects_carried == 2


class TestChaosWithCheckpoints:
    def test_nemesis_guarantees_hold_with_recovery_armed(self):
        from repro.analysis.nemesis import NemesisConfig, run_nemesis

        config = NemesisConfig(
            n_crashes=2, n_partitions=1, checkpoint_every=5
        )
        for seed in (3, 11, 29):
            result = run_nemesis(seed, "with-seqno", config)
            assert result.respects_guarantees(), (seed, result.audit_first)
            assert result.checkpoints > 0

    def test_checkpoint_cli_benchmark_runs(self, capsys):
        assert cli_main(["checkpoint", "--updates", "24", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "snapshot" in out and "bytes-shipped" in out
