"""The unified replication pipeline: batching and backpressure.

Covers the pipeline stages introduced by the ``repro.replication``
package: group-commit batching (sealed by count and by simulated-time
window), the default configuration's bit-compatibility with unbatched
propagation, crash semantics of the batcher (pending batches survive
the origin's crash and flush at recovery), and bounded apply queues
engaging backpressure that throttles the fragment's agent.
"""

import pytest

from repro import (
    FragmentedDatabase,
    InstantMoveProtocol,
    PipelineConfig,
    QtBatch,
)
from repro.cc.ops import Read, Write
from repro.core.movement.base import MovementProtocol
from repro.obs import taxonomy
from repro.replication import (
    BlindAdmission,
    OrderedAdmission,
)


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def make_db(nodes=("A", "B", "C"), objects=("x",), **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=list(objects))
    db.load({obj: 0 for obj in objects})
    db.finalize()
    return db


class TestPipelineConfig:
    def test_defaults_disable_batching(self):
        config = PipelineConfig()
        assert not config.batching
        assert config.max_apply_queue is None

    def test_batching_property(self):
        assert PipelineConfig(batch_size=2).batching
        assert PipelineConfig(batch_window=5.0).batching

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(batch_size=0)
        with pytest.raises(ValueError):
            PipelineConfig(batch_window=-1.0)
        with pytest.raises(ValueError):
            PipelineConfig(max_apply_queue=0)

    def test_qtbatch_is_frozen(self):
        batch = QtBatch(origin="A", qts=(), created_at=0.0)
        with pytest.raises(AttributeError):
            batch.origin = "B"


class TestDefaultUnbatched:
    def test_one_message_per_quasi_transaction(self):
        db = make_db()
        for _ in range(5):
            db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        # Direct path: every commit is its own single-member batch.
        assert db.metrics.value("replication.qt_submitted") == 5
        assert db.metrics.value("replication.batches_sent") == 5
        assert db.network.messages_by_kind["qt"] == 5 * 2  # two receivers
        assert db.mutual_consistency().consistent

    def test_no_batch_flush_trace_events_by_default(self):
        db = make_db()
        db.enable_tracing()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        assert db.tracer.counts("replication.") == {}

    def test_no_extra_simulator_events(self):
        """The direct path must not schedule flush timers."""
        db = make_db()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        assert db.pipeline.batcher.pending_count() == 0
        assert not db.pipeline.batcher._timers


class TestBatchingByCount:
    def test_batch_seals_at_count(self):
        db = make_db(pipeline=PipelineConfig(batch_size=3, batch_window=50.0))
        for _ in range(6):
            db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        assert db.metrics.value("replication.qt_submitted") == 6
        assert db.metrics.value("replication.batches_sent") == 2
        assert db.network.messages_by_kind["qt"] == 2 * 2
        assert db.nodes["B"].store.read("x") == 6
        assert db.mutual_consistency().consistent

    def test_partial_batch_flushes_on_window(self):
        db = make_db(pipeline=PipelineConfig(batch_size=10, batch_window=4.0))
        db.submit_update("ag", bump(), writes=["x"])
        db.run(until=2.0)
        # Still pending: the window has not elapsed, nothing broadcast.
        assert db.pipeline.batcher.pending_count() == 1
        assert db.nodes["B"].store.read("x") == 0
        db.quiesce()
        assert db.pipeline.batcher.pending_count() == 0
        assert db.metrics.value("replication.batches_sent") == 1
        assert db.nodes["B"].store.read("x") == 1
        assert db.mutual_consistency().consistent

    def test_batch_flush_trace_event(self):
        db = make_db(pipeline=PipelineConfig(batch_size=2, batch_window=60.0))
        db.enable_tracing()
        db.submit_update("ag", bump(), writes=["x"])
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        flushes = db.tracer.events(taxonomy.QT_BATCH_FLUSH)
        assert len(flushes) == 1
        assert flushes[0].fields["count"] == 2
        assert flushes[0].fields["sealed_by"] == "count"

    def test_batch_fill_histogram(self):
        db = make_db(pipeline=PipelineConfig(batch_size=4, batch_window=100.0))
        for _ in range(4):
            db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        fills = db.metrics.histogram("replication.batch_fill").values
        assert 4 in fills

    def test_ordering_preserved_across_batches(self):
        db = make_db(pipeline=PipelineConfig(batch_size=4, batch_window=3.0))
        for i in range(10):
            db.sim.schedule_at(
                float(i), lambda: db.submit_update("ag", bump(), writes=["x"])
            )
        db.quiesce()
        for node in db.nodes.values():
            assert node.store.read("x") == 10
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok


class TestBatcherCrashSemantics:
    def test_pending_batch_survives_origin_crash(self):
        """A batch sealed while its origin is down is held, not lost:
        it flushes when the origin recovers (WAL has its members)."""
        db = make_db(pipeline=PipelineConfig(batch_size=10, batch_window=5.0))
        db.submit_update("ag", bump(), writes=["x"])
        db.submit_update("ag", bump(), writes=["x"])
        db.run(until=1.0)  # committed at A, batch still pending
        assert db.pipeline.batcher.pending_count() == 2
        db.fail_node("A")
        db.run(until=20.0)  # the window timer was suspended by the crash
        assert db.pipeline.batcher.pending_count() == 2
        assert db.nodes["B"].store.read("x") == 0
        db.recover_node("A")
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 2
        assert db.nodes["C"].store.read("x") == 2
        assert db.mutual_consistency().consistent


class TestBackpressure:
    def heal_flood_db(self):
        """12 updates commit while C is partitioned away; the heal dumps
        the whole backlog on C in one wave."""
        db = make_db(
            action_delay=0.5,
            pipeline=PipelineConfig(max_apply_queue=4),
        )
        db.partitions.partition_now([["A", "B"], ["C"]])
        for i in range(12):
            db.sim.schedule_at(
                float(i), lambda: db.submit_update("ag", bump(), writes=["x"])
            )
        db.sim.schedule_at(30.0, db.partitions.heal_now)
        return db

    def test_flooded_replica_engages_and_releases(self):
        db = self.heal_flood_db()
        late = []
        for i in range(4):
            db.sim.schedule_at(
                32.0 + i,
                lambda: late.append(
                    db.submit_update("ag", bump(), writes=["x"])
                ),
            )
        db.quiesce()
        assert db.metrics.value("replication.backpressure.engaged") >= 1
        assert db.metrics.value("replication.backpressure.released") >= 1
        assert db.metrics.value("replication.backpressure.throttled") >= 1
        # Deferred submissions were delayed, not dropped.
        assert all(t.succeeded for t in late)
        for node in db.nodes.values():
            assert node.store.read("x") == 16
        assert db.mutual_consistency().consistent
        assert not db.pipeline.backpressure.engaged("F")

    def test_throttle_events_traced(self):
        db = self.heal_flood_db()
        db.enable_tracing()
        for i in range(3):
            db.sim.schedule_at(
                32.0 + i,
                lambda: db.submit_update("ag", bump(), writes=["x"]),
            )
        db.quiesce()
        types = db.tracer.counts("replication.backpressure.")
        assert types.get(taxonomy.BACKPRESSURE_ENGAGE, 0) >= 1
        assert types.get(taxonomy.BACKPRESSURE_RELEASE, 0) >= 1
        assert types.get(taxonomy.BACKPRESSURE_THROTTLE, 0) >= 1
        assert types.get(taxonomy.BACKPRESSURE_RESUME, 0) >= 1

    def test_crashed_replica_disengages(self):
        """A lagging replica that crashes must not throttle forever:
        its volatile backlog is gone with it."""
        db = self.heal_flood_db()
        db.sim.schedule_at(31.5, lambda: db.fail_node("C"))
        late = []
        db.sim.schedule_at(
            33.0,
            lambda: late.append(db.submit_update("ag", bump(), writes=["x"])),
        )
        db.sim.schedule_at(60.0, lambda: db.recover_node("C"))
        db.quiesce()
        assert all(t.succeeded for t in late)
        assert db.nodes["C"].store.read("x") == 13
        assert db.mutual_consistency().consistent

    def test_unbounded_by_default(self):
        db = make_db(action_delay=0.5)
        db.partitions.partition_now([["A", "B"], ["C"]])
        for i in range(12):
            db.sim.schedule_at(
                float(i), lambda: db.submit_update("ag", bump(), writes=["x"])
            )
        db.sim.schedule_at(30.0, db.partitions.heal_now)
        db.quiesce()
        assert db.metrics.value("replication.backpressure.engaged") == 0
        assert db.mutual_consistency().consistent


class TestFifoAblationWithBatching:
    """Batching under the ``fifo=False`` ablation (E12a's knob).

    A batch rides one broadcast message, so a non-FIFO network can
    permute whole batches but never interleave the members of one
    batch: the reorder boundary is the batch boundary.
    """

    def reorder_db(self, fifo, pipeline=None, seed=2):
        db = FragmentedDatabase(
            ["A", "B", "C"],
            fifo_broadcast=fifo,
            movement=InstantMoveProtocol(),
            seed=seed,
            pipeline=pipeline,
        )
        # A jittery network whose channels genuinely reorder messages.
        db.network.jitter = 5.0
        db.network.jitter_rng = db.rng.fork("net-jitter")
        db.network.fifo_channels = False
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()
        return db

    def drive(self, db, n=10):
        installs = {name: [] for name in db.nodes}
        db.on_install(
            "F",
            lambda node, quasi: installs[node.name].append(quasi.source_txn),
        )

        def setx(value):
            def body(_ctx):
                yield Write("x", value)

            return body

        for i in range(n):
            db.sim.schedule_at(
                float(i),
                lambda i=i: db.submit_update(
                    "ag", setx(i), writes=["x"], txn_id=f"T{i}"
                ),
            )
        db.quiesce()
        return installs

    def test_batch_members_never_split_by_reorder(self):
        db = self.reorder_db(
            fifo=False, pipeline=PipelineConfig(batch_size=4, batch_window=3.0)
        )
        db.enable_tracing()
        installs = self.drive(db)
        batches = [
            event.fields["txns"]
            for event in db.tracer.events(taxonomy.QT_BATCH_FLUSH)
        ]
        assert len(batches) >= 2
        for name in ("B", "C"):
            sequence = installs[name]
            for members in batches:
                positions = [sequence.index(txn) for txn in members]
                # One contiguous ascending run: the batch arrived (and
                # installed) as a unit even though batches reordered.
                assert positions == list(
                    range(positions[0], positions[0] + len(members))
                )

    def test_fifo_with_batching_stays_consistent(self):
        db = self.reorder_db(
            fifo=True, pipeline=PipelineConfig(batch_size=4, batch_window=3.0)
        )
        self.drive(db)
        assert db.mutual_consistency().consistent

    def test_mc_break_still_reproduces_with_batching(self):
        """The E12a divergence demo survives batching: reordered batches
        still land in different arrival orders at different replicas."""
        broken = False
        for seed in range(8):
            db = self.reorder_db(
                fifo=False,
                pipeline=PipelineConfig(batch_size=2, batch_window=1.5),
                seed=seed,
            )
            self.drive(db)
            if not db.mutual_consistency().consistent:
                broken = True
                break
        assert broken


class TestAdmissionPolicies:
    def test_default_protocol_uses_ordered_admission(self):
        assert isinstance(MovementProtocol.admission, OrderedAdmission)

    def test_instant_move_uses_blind_admission(self):
        assert isinstance(InstantMoveProtocol.admission, BlindAdmission)

    def test_no_private_install_paths(self):
        """Every movement protocol routes installs through
        node.enqueue_install -> FragmentApplyQueue (single seam)."""
        db = make_db(movement=InstantMoveProtocol())
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        for name in ("B", "C"):
            assert db.nodes[name].quasi_installed == 1
        assert db.mutual_consistency().consistent
