"""Tests for the lock table and waits-for graph."""

from repro.cc.deadlock import WaitsForGraph, choose_victim
from repro.cc.locks import LockMode, LockTable


class TestLockTable:
    def test_shared_locks_compatible(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.S)
        assert table.acquire("T2", "x", LockMode.S)
        assert table.holders_of("x") == {
            "T1": LockMode.S,
            "T2": LockMode.S,
        }

    def test_exclusive_blocks_shared(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.X)
        assert not table.acquire("T2", "x", LockMode.S)
        assert table.queued_for("x") == [("T2", LockMode.S)]

    def test_shared_blocks_exclusive(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.S)
        assert not table.acquire("T2", "x", LockMode.X)

    def test_reacquire_held_mode_is_noop_grant(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.S)
        assert table.acquire("T1", "x", LockMode.S)
        assert table.acquire("T1", "y", LockMode.X)
        assert table.acquire("T1", "y", LockMode.S)  # X covers S
        assert table.acquire("T1", "y", LockMode.X)

    def test_upgrade_sole_holder(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.S)
        assert table.acquire("T1", "x", LockMode.X)
        assert table.holders_of("x") == {"T1": LockMode.X}

    def test_upgrade_with_other_holders_waits_at_front(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.S)
        table.acquire("T2", "x", LockMode.S)
        assert not table.acquire("T3", "x", LockMode.X)
        assert not table.acquire("T1", "x", LockMode.X)  # upgrade
        assert table.queued_for("x")[0] == ("T1", LockMode.X)

    def test_fifo_prevents_reader_starvation(self):
        table = LockTable()
        table.acquire("R1", "x", LockMode.S)
        assert not table.acquire("W", "x", LockMode.X)
        # A new reader queues behind the writer rather than overtaking.
        assert not table.acquire("R2", "x", LockMode.S)
        assert [t for t, _ in table.queued_for("x")] == ["W", "R2"]

    def test_release_grants_from_queue_in_order(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.X)
        table.acquire("T2", "x", LockMode.S)
        table.acquire("T3", "x", LockMode.S)
        table.acquire("T4", "x", LockMode.X)
        granted = table.release_all("T1")
        # Both compatible readers granted, the writer stays queued.
        assert [(t, m) for t, _o, m in granted] == [
            ("T2", LockMode.S),
            ("T3", LockMode.S),
        ]
        assert table.queued_for("x") == [("T4", LockMode.X)]

    def test_release_grants_upgrade_when_sole(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.S)
        table.acquire("T2", "x", LockMode.S)
        table.acquire("T1", "x", LockMode.X)  # queued upgrade
        granted = table.release_all("T2")
        assert granted == [("T1", "x", LockMode.X)]
        assert table.holders_of("x") == {"T1": LockMode.X}

    def test_release_drops_queued_requests(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.X)
        table.acquire("T2", "x", LockMode.S)
        table.release_all("T2")
        assert table.queued_for("x") == []

    def test_blockers_of_includes_queued_ahead(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.S)
        table.acquire("W1", "x", LockMode.X)
        table.acquire("R2", "x", LockMode.S)
        blockers = table.blockers_of("R2", "x", LockMode.S)
        assert blockers == {"W1"}  # T1's S is compatible; W1 is not

    def test_blockers_of_excludes_self(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.S)
        table.acquire("T2", "x", LockMode.S)
        blockers = table.blockers_of("T1", "x", LockMode.X)
        assert blockers == {"T2"}

    def test_held_by(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.S)
        table.acquire("T1", "y", LockMode.X)
        held = dict(table.held_by("T1"))
        assert held == {"x": LockMode.S, "y": LockMode.X}


class TestWaitsForGraph:
    def test_simple_cycle(self):
        graph = WaitsForGraph()
        graph.block("T1", {"T2"})
        graph.block("T2", {"T1"})
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"T1", "T2"}

    def test_no_cycle(self):
        graph = WaitsForGraph()
        graph.block("T1", {"T2"})
        graph.block("T2", {"T3"})
        assert graph.find_cycle() is None

    def test_clear_waiting_keeps_incoming_edges(self):
        """Regression: a resumed transaction still holds its locks.

        T1 waits for T2.  T2 resumes (clear_waiting), then blocks on
        something T1 holds — the T1 -> T2 edge must have survived for
        the cycle to be visible.
        """
        graph = WaitsForGraph()
        graph.block("T1", {"T2"})
        graph.clear_waiting("T2")  # T2 resumed but still holds locks
        graph.block("T2", {"T1"})
        assert graph.find_cycle() is not None

    def test_remove_erases_both_sides(self):
        graph = WaitsForGraph()
        graph.block("T1", {"T2"})
        graph.block("T2", {"T1"})
        graph.remove("T2")  # T2 finished and released everything
        assert graph.find_cycle() is None

    def test_choose_victim_is_youngest(self):
        cycle = ["T1", "T2", "T3", "T1"]
        start_seq = {"T1": 5, "T2": 9, "T3": 1}
        assert choose_victim(cycle, start_seq) == "T2"

    def test_choose_victim_deterministic_on_tie(self):
        cycle = ["Ta", "Tb", "Ta"]
        start_seq = {"Ta": 3, "Tb": 3}
        assert choose_victim(cycle, start_seq) == "Tb"


class TestDrainRegressions:
    """Pin the queue-drain bugs the property tests flushed out."""

    def test_queued_s_behind_own_x_does_not_downgrade(self):
        # T0 holds S; T1 queues X, then queues S behind its own X.
        # When T0 releases, T1's X upgrade is granted — draining T1's
        # stale S entry must NOT overwrite the X with the weaker mode.
        table = LockTable()
        table.acquire("T0", "y", LockMode.S)
        assert not table.acquire("T1", "y", LockMode.X)
        assert not table.acquire("T1", "y", LockMode.S)
        granted = table.release_all("T0")
        assert table.holders_of("y") == {"T1": LockMode.X}
        assert table.queued_for("y") == []
        assert ("T1", "y", LockMode.X) in granted

    def test_queued_duplicate_same_mode_collapses(self):
        table = LockTable()
        table.acquire("T0", "y", LockMode.X)
        assert not table.acquire("T1", "y", LockMode.S)
        assert not table.acquire("T1", "y", LockMode.S)
        table.release_all("T0")
        assert table.holders_of("y") == {"T1": LockMode.S}
        assert table.queued_for("y") == []
