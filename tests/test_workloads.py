"""Tests for the banking, warehouse, and airline workloads.

These include executable renditions of the paper's worked scenarios:

* Section 2's banking flow — both $200 withdrawals granted during a
  partition, the overdraft discovered and penalized *only* at the
  central office after the heal (E3's core assertion);
* Section 4.2's warehouse — global serializability without read locks
  under the star-shaped read-access graph (E4);
* Section 4.3's airline — full request availability with overbooking
  structurally impossible (E6).
"""

import pytest

from repro import (
    AcyclicReadsStrategy,
    FragmentedDatabase,
    UnrestrictedReadsStrategy,
)
from repro.workloads import AirlineWorkload, BankingWorkload, WarehouseWorkload
from repro.workloads.generator import BankingDriver, generate_script
from repro.sim.rng import SeededRng


def banking_db(view_mode="own", owners=None, nodes=("A", "B")):
    db = FragmentedDatabase(list(nodes), strategy=UnrestrictedReadsStrategy())
    workload = BankingWorkload(
        db,
        {"00001": 300.0},
        central_node=nodes[0],
        owners=owners,
        view_mode=view_mode,
    )
    db.finalize()
    return db, workload


class TestBankingBasics:
    def test_deposit_flows_into_balance(self):
        db, workload = banking_db()
        tracker = workload.deposit("00001", 150.0)
        db.quiesce()
        assert tracker.succeeded
        assert workload.balance_at("00001", "A") == 450.0
        assert workload.balance_at("00001", "B") == 450.0

    def test_withdraw_checks_view(self):
        db, workload = banking_db()
        tracker = workload.withdraw("00001", 200.0)
        db.quiesce()
        assert tracker.result[0] == "granted"
        refused = workload.withdraw("00001", 500.0)
        db.quiesce()
        assert refused.result[0] == "refused"
        assert workload.stats.withdrawals_refused == 1

    def test_local_view_includes_unrecorded_activity(self):
        db, workload = banking_db()
        db.partitions.partition_now([["A"], ["B"]])
        # The owner lives at A in this setup (central default), so the
        # deposit lands at A; its fold also happens at A immediately.
        workload.deposit("00001", 100.0)
        db.run(until=5)
        assert workload.local_view("00001", "A") == 400.0
        assert workload.local_view("00001", "B") == 300.0  # stale replica
        db.partitions.heal_now()
        db.quiesce()
        assert workload.local_view("00001", "B") == 400.0

    def test_recorded_marks_catch_up(self):
        db, workload = banking_db()
        workload.deposit("00001", 100.0)
        db.quiesce()
        store = db.nodes["A"].store
        owner = workload.owner_of("00001")
        assert store.read(f"rec:00001:{owner}:dep") == 100.0

    def test_validation_of_amounts(self):
        db, workload = banking_db()
        with pytest.raises(ValueError):
            workload.deposit("00001", -5.0)
        with pytest.raises(ValueError):
            workload.withdraw("00001", 0.0)

    def test_invalid_view_mode_rejected(self):
        from repro.errors import DesignError

        db = FragmentedDatabase(["A"])
        with pytest.raises(DesignError):
            BankingWorkload(db, {"x": 1.0}, "A", view_mode="psychic")


class TestSection2Scenario:
    """The paper's Section 2 walkthrough, measured."""

    def make(self):
        # Joint account: one owner at each node; central office at A.
        return banking_db(
            view_mode="balance",
            owners={"00001": [("alice", "A"), ("bob", "B")]},
        )

    def test_both_200_withdrawals_granted_then_penalized(self):
        db, workload = self.make()
        db.partitions.partition_now([["A"], ["B"]])
        at_a = workload.withdraw("00001", 200.0, owner=0)
        at_b = workload.withdraw("00001", 200.0, owner=1)
        db.run(until=20)
        # Availability: both granted — nobody goes home empty-handed.
        assert at_a.result[0] == "granted"
        assert at_b.result[0] == "granted"
        # A's withdrawal is already folded at the central office.
        assert workload.balance_at("00001", "A") == 100.0
        assert not workload.stats.letters
        db.partitions.heal_now()
        db.quiesce()
        # B's withdrawal arrives; the overdraft is discovered and
        # penalized exactly once, at the central office.
        assert len(workload.stats.letters) == 1
        letter = workload.stats.letters[0]
        assert letter.account == "00001"
        assert letter.balance_before_fine == -100.0
        assert workload.balance_at("00001", "A") == -125.0
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_scenario_1_no_penalty_when_consistent(self):
        db, workload = self.make()
        db.partitions.partition_now([["A"], ["B"]])
        workload.withdraw("00001", 100.0, owner=0)
        workload.withdraw("00001", 100.0, owner=1)
        db.run(until=20)
        db.partitions.heal_now()
        db.quiesce()
        assert workload.stats.letters == []
        assert workload.balance_at("00001", "A") == 100.0
        assert db.mutual_consistency().consistent

    def test_decision_process_is_centralized(self):
        """Only the central office's node writes BALANCES."""
        db, workload = self.make()
        db.partitions.partition_now([["A"], ["B"]])
        workload.withdraw("00001", 200.0, owner=0)
        workload.withdraw("00001", 200.0, owner=1)
        db.run(until=20)
        db.partitions.heal_now()
        db.quiesce()
        balance_writers = {
            txn.node
            for txn in db.recorder.committed
            if any(w.obj.startswith("bal:") for w in txn.writes)
        }
        assert balance_writers == {"A"}

    def test_view_nonneg_predicate_flags_overdraft(self):
        db, workload = self.make()
        db.partitions.partition_now([["A"], ["B"]])
        workload.withdraw("00001", 200.0, owner=0)
        workload.withdraw("00001", 200.0, owner=1)
        db.run(until=20)
        db.partitions.heal_now()
        db.quiesce()
        violations = db.predicates.evaluate(db.nodes["A"].store)
        assert violations.multi >= 1  # the view went negative
        assert violations.single == 0  # single-fragment never violated


class TestBankingDriver:
    def test_script_replay_is_deterministic(self):
        rng1 = SeededRng(5)
        rng2 = SeededRng(5)
        s1 = generate_script(rng1, ["a", "b"], 100.0, owners_per_account=2)
        s2 = generate_script(rng2, ["a", "b"], 100.0, owners_per_account=2)
        assert s1 == s2
        assert any(e.owner == 1 for e in s1)

    def test_driver_submits_everything(self):
        db, workload = banking_db()
        driver = BankingDriver(db, workload)
        rng = SeededRng(5)
        script = generate_script(rng, ["00001"], 50.0, mean_interarrival=5.0)
        driver.schedule(script)
        db.quiesce()
        assert len(driver.stats.trackers) == len(script)
        assert driver.stats.deposits + driver.stats.withdrawals == len(script)


class TestWarehouse:
    def make(self, strategy=None):
        db = FragmentedDatabase(
            ["W1", "W2", "HQ"], strategy=strategy or AcyclicReadsStrategy()
        )
        workload = WarehouseWorkload(
            db,
            {"w1": "W1", "w2": "W2"},
            central_node="HQ",
            products=["widgets"],
            initial_stock=100,
            target_stock=100,
        )
        db.finalize()
        return db, workload

    def test_design_is_elementarily_acyclic(self):
        db, workload = self.make()
        assert db.rag.is_elementarily_acyclic()

    def test_sales_and_shipments(self):
        db, workload = self.make()
        workload.sale("w1", "widgets", 30)
        workload.shipment("w1", "widgets", 10)
        db.quiesce()
        store = db.nodes["HQ"].store
        assert store.read("w:w1:widgets:onhand") == 80
        assert store.read("w:w1:widgets:sold") == 30
        assert store.read("w:w1:widgets:received") == 10

    def test_oversell_refused(self):
        db, workload = self.make()
        tracker = workload.sale("w1", "widgets", 500)
        db.quiesce()
        assert tracker.result[0] == "refused"
        assert workload.stats.sales_refused == 1

    def test_scan_computes_orders(self):
        db, workload = self.make()
        workload.sale("w1", "widgets", 40)
        workload.sale("w2", "widgets", 10)
        db.quiesce()
        tracker = workload.scan_and_order()
        db.quiesce()
        assert tracker.succeeded
        assert db.nodes["HQ"].store.read("c:widgets:to_order") == 50

    def test_warehouses_available_during_partition_and_gs_holds(self):
        """The Figure 4.2.1 promise: availability + serializability."""
        db, workload = self.make()
        db.partitions.partition_now([["W1"], ["W2", "HQ"]])
        t1 = workload.sale("w1", "widgets", 5)
        t2 = workload.sale("w2", "widgets", 7)
        scan = workload.scan_and_order()
        db.run(until=20)
        assert t1.succeeded and t2.succeeded and scan.succeeded
        db.partitions.heal_now()
        db.quiesce()
        assert db.global_serializability().ok
        assert db.mutual_consistency().consistent
        violations = db.predicates.evaluate(db.nodes["HQ"].store)
        assert violations.total == 0

    def test_cross_warehouse_peek_allowed_readonly(self):
        db, workload = self.make()
        tracker = workload.peek_other_warehouse("w1", "w2", "widgets")
        db.quiesce()
        assert tracker.succeeded
        assert tracker.result == 100

    def test_stock_conservation_predicate(self):
        db, workload = self.make()
        workload.sale("w1", "widgets", 20)
        workload.shipment("w1", "widgets", 5)
        db.quiesce()
        assert db.predicates.evaluate(db.nodes["HQ"].store).total == 0


class TestAirline:
    def make(self, capacity=100):
        db = FragmentedDatabase(
            ["N1", "N2", "N3", "N4"], strategy=UnrestrictedReadsStrategy()
        )
        workload = AirlineWorkload(
            db,
            customer_homes={"c1": "N1", "c2": "N2"},
            flight_homes={"f1": "N3", "f2": "N4"},
            capacity=capacity,
        )
        db.finalize()
        return db, workload

    def test_request_and_grant(self):
        db, workload = self.make()
        workload.request("c1", "f1", 2)
        db.quiesce()
        scan = workload.scan_flight("f1")
        db.quiesce()
        assert scan.result == [("c1", 2)]
        assert workload.seats_reserved("f1", "N3") == 2

    def test_requests_immutable(self):
        db, workload = self.make()
        workload.request("c1", "f1", 2)
        db.quiesce()
        tracker = workload.request("c1", "f1", 5)
        db.quiesce()
        assert tracker.result[0] == "already-requested"

    def test_requests_available_during_partition(self):
        db, workload = self.make()
        db.partitions.partition_now(
            [["N1"], ["N2"], ["N3"], ["N4"]]
        )  # total partition
        t1 = workload.request("c1", "f1", 1)
        t2 = workload.request("c2", "f2", 3)
        db.run(until=10)
        assert t1.succeeded and t2.succeeded

    def test_overbooking_structurally_impossible(self):
        db, workload = self.make(capacity=3)
        db.partitions.partition_now([["N1", "N3"], ["N2", "N4"]])
        workload.request("c1", "f1", 2)
        workload.request("c2", "f1", 2)
        db.run(until=10)
        workload.scan_flight("f1")
        db.run(until=20)
        db.partitions.heal_now()
        db.quiesce()
        workload.scan_flight("f1")
        db.quiesce()
        # 2 + 2 > 3: one request must have been denied, never overbooked.
        assert workload.seats_reserved("f1", "N3") == 2
        assert workload.stats.denied_overbooking >= 1
        violations = db.predicates.evaluate(db.nodes["N3"].store)
        assert violations.single == 0  # no-overbooking is single-fragment

    def test_fragmentwise_but_not_necessarily_globally_serializable(self):
        db, workload = self.make()
        workload.request("c1", "f1", 1)
        workload.request("c2", "f2", 1)
        db.run(until=3)
        workload.scan_flight("f1")
        workload.scan_flight("f2")
        db.quiesce()
        assert db.fragmentwise_serializability().ok
        assert db.mutual_consistency().consistent

    def test_rag_is_figure_433(self):
        db, workload = self.make()
        edges = set(db.rag.edges)
        expected = {
            ("F:f1", "C:c1"), ("F:f1", "C:c2"),
            ("F:f2", "C:c1"), ("F:f2", "C:c2"),
        }
        assert expected <= edges
        assert not db.rag.is_elementarily_acyclic()
