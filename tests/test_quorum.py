"""Quorum reads under partial replication — including chaos coverage.

The conclusion extension: with per-fragment replica sets, a read
submitted at a node outside the fragment's replica set is served by a
version vote over the replica set.  These tests pin the availability
claim (reads keep working with the agent's home node crashed or
partitioned away), the failure mode (no quorum -> loud timeout, never
a silent stale read), and the staleness bound (observed values are
real committed writes, and repeated reads see monotone versions once
the cluster is quiescent).
"""

import pytest

from repro import (
    DesignError,
    FragmentedDatabase,
    QuorumConfig,
    RequestStatus,
    scripted_body,
)
from repro.analysis.audit import audit_events
from repro.analysis.nemesis import NemesisConfig, run_nemesis
from repro.cc.ops import Write


def write_body(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


def make_db(quorum=None):
    """Five nodes; fragment F replicated on A, B, C only."""
    db = FragmentedDatabase(["A", "B", "C", "D", "E"], quorum=quorum)
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.set_replication("F", ["A", "B", "C"])
    db.load({"x": 0})
    db.finalize()
    return db


def quorum_read(db, at, obj="x"):
    observed = []
    tracker = db.submit_readonly(
        "ag", scripted_body([("r", obj)], collect=observed), at=at,
        reads=[obj],
    )
    return tracker, observed


class TestQuorumReads:
    def test_served_from_majority_with_agent_home_crashed(self):
        db = make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.fail_node("A")  # the agent's home — and a replica — is gone
        tracker, observed = quorum_read(db, at="D")
        db.quiesce()
        assert tracker.succeeded
        assert observed == [("x", 7)]  # B and C form the majority
        assert db.metrics.value("quorum.served") == 1

    def test_served_with_agent_home_partitioned_away(self):
        db = make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.partitions.partition_now([["A"], ["B", "C", "D", "E"]])
        tracker, observed = quorum_read(db, at="E")
        db.run(until=db.sim.now + 50)
        assert tracker.succeeded
        assert observed == [("x", 7)]

    def test_stale_but_committed_during_partition(self):
        """A partitioned-away majority serves the last propagated state:
        stale relative to the isolated agent, never a phantom value."""
        db = make_db()
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.partitions.partition_now([["A"], ["B", "C", "D", "E"]])
        # The agent keeps writing in its minority side; nothing reaches
        # B/C until heal.
        db.submit_update("ag", write_body("x", 99), writes=["x"])
        db.run(until=db.sim.now + 10)
        tracker, observed = quorum_read(db, at="D")
        db.run(until=db.sim.now + 50)
        assert tracker.succeeded
        assert observed == [("x", 7)]  # committed, bounded-stale value
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 99

    def test_no_quorum_times_out_loudly(self):
        db = make_db(quorum=QuorumConfig(timeout=20.0))
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.fail_node("A")
        db.fail_node("B")  # only C left: majority of {A,B,C} unreachable
        tracker, observed = quorum_read(db, at="D")
        db.run(until=db.sim.now + 60)
        assert tracker.status is RequestStatus.TIMED_OUT
        assert "quorum" in tracker.reason
        assert observed == []
        assert db.metrics.value("quorum.timeouts") == 1

    def test_monotone_versions_across_repeated_reads(self):
        db = make_db()
        seen = []
        for value in (5, 6, 7):
            db.submit_update("ag", write_body("x", value), writes=["x"])
            db.quiesce()
            tracker, observed = quorum_read(db, at="D")
            db.quiesce()
            assert tracker.succeeded
            seen.append(observed[0][1])
        assert seen == [5, 6, 7]  # never goes backwards

    def test_explicit_read_quorum_of_all_replicas(self):
        db = make_db(quorum=QuorumConfig(read_quorum=3, timeout=20.0))
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        tracker, observed = quorum_read(db, at="D")
        db.quiesce()
        assert tracker.succeeded and observed == [("x", 7)]
        # With read_quorum = k, one crashed replica kills availability —
        # the configured trade-off.
        db.fail_node("C")
        tracker2, _ = quorum_read(db, at="D")
        db.run(until=db.sim.now + 60)
        assert tracker2.status is RequestStatus.TIMED_OUT

    def test_config_validation(self):
        with pytest.raises(DesignError):
            QuorumConfig(read_quorum=0)
        with pytest.raises(DesignError):
            QuorumConfig(timeout=0.0)

    def test_trace_and_audit_cover_quorum_reads(self):
        db = make_db()
        db.enable_tracing(None)
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        db.fail_node("A")
        tracker, _ = quorum_read(db, at="D")
        db.quiesce()
        assert tracker.succeeded
        kinds = {event.type for event in db.tracer}
        assert "quorum.read.begin" in kinds
        assert "quorum.read.resolve" in kinds
        report = audit_events(event.as_dict() for event in db.tracer)
        assert report.ok
        # The replica-set discipline check actually ran (not skipped).
        assert report.checks["replication"].checked


class TestDeterministicPlacement:
    def test_same_catalog_same_replica_sets(self):
        def build():
            db = FragmentedDatabase(
                [f"N{i}" for i in range(8)], replication_factor=3
            )
            for i in range(4):
                db.add_agent(f"a{i}", home_node=f"N{i}")
                db.add_fragment(f"F{i}", agent=f"a{i}", objects=[f"x{i}"])
            return {f"F{i}": db.replica_set(f"F{i}") for i in range(4)}

        first, second = build(), build()
        assert first == second
        for i, replicas in enumerate(first.values()):
            assert len(replicas) == 3
            assert f"N{i}" in replicas  # agent home always a member

    def test_factor_at_or_above_cluster_size_means_full(self):
        db = FragmentedDatabase(["A", "B"], replication_factor=5)
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        assert db.replica_set("F") == ("A", "B")
        assert db.propagation_plan("F") == (None, "")

    def test_restricted_fragment_gets_own_stream(self):
        db = FragmentedDatabase(
            ["A", "B", "C", "D"], replication_factor=2
        )
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        targets, stream = db.propagation_plan("F")
        assert targets == db.replica_set("F")
        assert stream == "f:F"


class TestQuorumChaos:
    """Seeded nemesis runs with restricted replica sets + quorum reads."""

    CONFIG = NemesisConfig(
        n_nodes=5,
        n_updates=10,
        n_moves=0,
        horizon=200.0,
        loss_rate=0.0,
        dup_rate=0.0,
        jitter=1.0,
        n_partitions=1,
        replication_factor=3,
        n_quorum_reads=6,
    )

    @pytest.mark.parametrize("seed", [11, 4242])
    def test_chaos_quorum_reads_deterministic_and_audited(self, seed):
        first = run_nemesis(seed, "with-seqno", self.CONFIG)
        second = run_nemesis(seed, "with-seqno", self.CONFIG)
        assert first == second
        assert first.audit_ok
        assert first.mutually_consistent
        assert first.quorum_reads > 0
        # Every scheduled read resolved one way or the other — served
        # by a quorum or loudly timed out, never left hanging.
        assert (
            first.quorum_served + first.quorum_timeouts
            == first.quorum_reads
        )

    def test_fault_free_chaos_serves_every_quorum_read(self):
        config = NemesisConfig(
            n_nodes=5,
            n_updates=10,
            n_moves=0,
            horizon=200.0,
            loss_rate=0.0,
            dup_rate=0.0,
            jitter=0.0,
            n_partitions=0,
            replication_factor=3,
            n_quorum_reads=6,
        )
        result = run_nemesis(3, "with-seqno", config)
        assert result.quorum_reads == 6
        assert result.quorum_served == 6
        assert result.quorum_timeouts == 0
        assert result.audit_ok
