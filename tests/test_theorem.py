"""Property-based validation of the Section 4.2 theorem (E8 in miniature).

Randomized fragments-and-agents systems with forest-shaped read-access
graphs must *never* produce a cyclic global serialization graph; with
cyclic graphs, violations are possible but fragmentwise serializability
and mutual consistency must still always hold (Section 4.3's guarantee
does not depend on the read pattern).
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.theorem import run_random_workload


class TestTheoremHolds:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_acyclic_rag_implies_global_serializability(self, seed):
        result = run_random_workload(seed, acyclic=True, n_transactions=12)
        assert result.globally_serializable, (
            f"theorem violated at seed {seed}"
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fragmentwise_always_holds_acyclic(self, seed):
        result = run_random_workload(seed, acyclic=True, n_transactions=12)
        assert result.fragmentwise
        assert result.mutually_consistent

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fragmentwise_always_holds_cyclic(self, seed):
        result = run_random_workload(seed, acyclic=False, n_transactions=12)
        assert result.fragmentwise
        assert result.mutually_consistent

    def test_cyclic_rag_admits_violations_somewhere(self):
        """The control group: violations must actually be observable.

        (Not a hypothesis test: we need existence over a seed sweep,
        not universality.)
        """
        violated = 0
        for seed in range(60):
            result = run_random_workload(
                seed, acyclic=False, n_transactions=16
            )
            if not result.globally_serializable:
                violated += 1
        assert violated > 0, "counterexample generator lost its teeth"

    def test_deterministic_replay(self):
        a = run_random_workload(1234, acyclic=True)
        b = run_random_workload(1234, acyclic=True)
        assert a == b
