"""Tests for the crash-stop failure model and WAL recovery."""

from repro import FragmentedDatabase, MajorityCommitProtocol, RequestStatus
from repro.cc.ops import Read, Write


def make_db(nodes=("A", "B", "C"), **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x", "y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    return db


def bump(obj):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


class TestCrash:
    def test_crash_wipes_volatile_state(self):
        db = make_db()
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        replica = db.nodes["B"]
        assert replica.store.read("x") == 1
        db.fail_node("B")
        assert replica.down
        assert not replica.store.exists("x")
        assert replica.scheduler.active == {}

    def test_crash_aborts_inflight_transactions(self):
        db = make_db()
        db.nodes["A"].scheduler.action_delay = 5.0

        def slow(_ctx):
            yield Write("x", 1)
            yield Write("y", 1)

        tracker = db.submit_update("ag", slow, writes=["x", "y"])
        db.run(until=2)
        db.fail_node("A")
        assert tracker.status is RequestStatus.ABORTED
        assert "crashed" in tracker.reason

    def test_messages_to_down_node_are_held(self):
        db = make_db()
        db.fail_node("B")
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        assert db.network.held_count() > 0
        assert db.nodes["C"].store.read("x") == 1

    def test_double_fail_is_idempotent(self):
        db = make_db()
        db.fail_node("B")
        db.fail_node("B")
        assert db.nodes["B"].crashes == 1


class TestRecovery:
    def test_wal_replay_restores_stable_state(self):
        db = make_db()
        for _ in range(3):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("B")
        db.recover_node("B")
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 3
        assert db.mutual_consistency().consistent

    def test_updates_during_downtime_arrive_after_recovery(self):
        db = make_db()
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("B")
        for _ in range(4):
            db.submit_update("ag", bump("x"), writes=["x"])
        db.run(until=db.sim.now + 10)
        db.recover_node("B")
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 5
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_recovered_node_serves_reads(self):
        db = make_db()
        db.submit_update("ag", bump("y"), writes=["y"])
        db.quiesce()
        db.fail_node("C")
        db.recover_node("C")
        db.quiesce()
        results = []

        def reader(_ctx):
            results.append((yield Read("y")))

        db.submit_readonly("ag", reader, at="C", reads=["y"])
        db.quiesce()
        assert results == [1]

    def test_agent_home_crash_and_recovery(self):
        db = make_db()
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("A")  # the agent's own home
        rejected = None
        db.run(until=db.sim.now + 5)
        db.recover_node("A")
        db.quiesce()
        tracker = db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        assert tracker.succeeded
        assert db.nodes["B"].store.read("x") == 2
        assert db.mutual_consistency().consistent

    def test_agent_escapes_crashed_home_then_home_recovers(self):
        """§4.4: node failure motivates the move; recovery converges."""
        db = make_db(movement=MajorityCommitProtocol())
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        db.fail_node("A")
        db.move_agent("ag", "B", transport_delay=1.0)
        db.run(until=db.sim.now + 30)
        tracker = db.submit_update("ag", bump("x"), writes=["x"])
        db.run(until=db.sim.now + 30)
        assert tracker.succeeded
        db.recover_node("A")
        db.quiesce()
        assert db.nodes["A"].store.read("x") == 2
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_wal_metrics(self):
        db = make_db()
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        replica = db.nodes["B"]
        appends_before = replica.wal.appends
        assert appends_before >= 3  # 2 loads + 1 install
        db.fail_node("B")
        db.recover_node("B")
        assert replica.wal.replays >= 1

    def test_anti_entropy_fills_middleware_gap(self):
        """A quasi-transaction handed over by the broadcast middleware
        moments before the crash never reached the WAL; peers refill it."""
        db = make_db()
        db.submit_update("ag", bump("x"), writes=["x"])
        db.quiesce()
        replica = db.nodes["B"]
        # Simulate the gap: wipe the install from the WAL's perspective
        # by crashing, then hand-shrinking the log to pre-install state.
        db.fail_node("B")
        replica.wal._records = [
            r for r in replica.wal._records if r.kind == "load"
        ]
        db.recover_node("B")
        db.quiesce()
        assert replica.store.read("x") == 1  # refilled by anti-entropy
        assert db.mutual_consistency().consistent
