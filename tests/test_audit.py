"""Offline lineage auditor: clean runs pass, corrupted traces fail loudly.

Two halves:

* clean traces — scripted runs and seeded chaos runs pass every check
  their protocol promises (the auditor's false-positive rate is zero on
  the E16 matrix by construction);
* corrupted traces — a seeded run's JSONL is surgically corrupted five
  ways, one per auditor check, and each corruption trips exactly the
  targeted check, with the report naming the violating event.
"""

import copy
import json

import pytest

from repro import FragmentedDatabase, MoveWithDataProtocol
from repro.analysis.audit import (
    ALL_CHECKS,
    RELAXED_CHECKS,
    audit_events,
    audit_trace,
    build_timeline,
    infer_protocol,
    related_txns,
    write_report,
)
from repro.analysis.nemesis import NemesisConfig, run_nemesis
from repro.cc.ops import Read, Write
from repro.obs import taxonomy


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def scripted_run_events():
    """A deterministic with-data run: updates, one move, full lineage."""
    db = FragmentedDatabase(["A", "B", "C"], movement=MoveWithDataProtocol())
    db.enable_tracing()
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    for index in range(3):
        db.sim.schedule_at(
            float(index * 5),
            lambda i=index: db.submit_update(
                "ag", bump(), reads=["x"], writes=["x"], txn_id=f"T{i}"
            ),
        )
    db.sim.schedule_at(20, lambda: db.move_agent("ag", "B", transport_delay=2))
    db.sim.schedule_at(
        30,
        lambda: db.submit_update(
            "ag", bump(), reads=["x"], writes=["x"], txn_id="T3"
        ),
    )
    db.quiesce()
    return [event.as_dict() for event in db.tracer]


@pytest.fixture(scope="module")
def clean_events():
    return scripted_run_events()


class TestCleanTraces:
    def test_scripted_run_passes_all_checks(self, clean_events):
        report = audit_events(clean_events, protocol="with-data")
        assert report.ok
        assert report.first_violation() is None
        assert report.installs > 0
        for name in ALL_CHECKS:
            assert report.checks[name].checked  # nothing relaxed
            assert report.checks[name].ok

    def test_report_dict_is_json_serializable(self, clean_events):
        report = audit_events(clean_events, protocol="with-data")
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["ok"] is True
        assert set(payload["checks"]) == set(ALL_CHECKS)

    def test_relaxed_protocols_skip_order_checks(self, clean_events):
        report = audit_events(clean_events, protocol="none")
        assert not report.checks["fifo_order"].checked
        assert not report.checks["agreement"].checked
        assert report.checks["exactly_once"].checked

    def test_missing_catalog_skips_initiation(self, clean_events):
        stripped = [
            e for e in clean_events if e["type"] != taxonomy.SYSTEM_CATALOG
        ]
        report = audit_events(stripped, protocol="with-data")
        assert not report.checks["initiation"].checked
        assert "catalog" in report.checks["initiation"].reason


class TestChaosSweepAudit:
    """Exactly-once (and every promised check) holds across the seeded
    chaos matrix: run_nemesis audits its own ring trace after
    quiescence, so respects_guarantees covers the lineage audit."""

    @pytest.mark.parametrize(
        "protocol", ["none", "majority", "with-data", "with-seqno",
                     "corrective"]
    )
    def test_seed_sweep_audits_clean(self, protocol):
        config = NemesisConfig(
            n_updates=10,
            horizon=150.0,
            loss_rate=0.15,
            dup_rate=0.05,
            jitter=2.0,
            n_flaps=1,
            n_partitions=1,
        )
        for seed in range(2):
            result = run_nemesis(seed, protocol, config)
            assert result.audit_ok, (
                f"{protocol}@{seed}: {result.audit_first}"
            )
            assert result.audit_violations == 0
            assert result.respects_guarantees()


def _first_of(events, etype, **match):
    for index, event in enumerate(events):
        if event["type"] != etype:
            continue
        if all(event.get(key) == value for key, value in match.items()):
            return index
    raise AssertionError(f"no {etype} event matching {match}")


class TestCorruptedTraces:
    """Each corruption trips exactly its targeted check."""

    def corrupt_and_audit(self, clean_events, corrupt, protocol="with-data"):
        events = copy.deepcopy(clean_events)
        corrupt(events)
        return audit_events(events, protocol=protocol)

    def assert_only(self, report, check_name):
        assert not report.ok
        assert not report.checks[check_name].ok, check_name
        for other in ALL_CHECKS:
            if other != check_name:
                assert report.checks[other].ok, (
                    f"{other} fired too: "
                    f"{report.checks[other].violations}"
                )

    def test_double_install_trips_exactly_once(self, clean_events):
        def corrupt(events):
            index = _first_of(events, taxonomy.QT_INSTALL)
            events.append(copy.deepcopy(events[index]))

        # Audit under a protocol whose order checks are relaxed: a
        # replayed install also lands at a stale stream slot, so under
        # full strictness fifo_order would fire as collateral.
        report = self.corrupt_and_audit(clean_events, corrupt,
                                        protocol="corrective")
        self.assert_only(report, "exactly_once")
        first = report.first_violation()
        assert first.check == "exactly_once"
        assert first.event["type"] == taxonomy.QT_INSTALL
        assert "installed twice" in first.message

    def test_reordered_installs_trip_fifo(self, clean_events):
        def corrupt(events):
            # Swap two installs at one node: slots regress in between.
            i = _first_of(events, taxonomy.QT_INSTALL, source_txn="T0",
                          node="C")
            j = _first_of(events, taxonomy.QT_INSTALL, source_txn="T1",
                          node="C")
            events[i], events[j] = events[j], events[i]

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["fifo_order"].ok
        first = report.checks["fifo_order"].violations[0]
        assert first.event["node"] == "C"
        # Order is per-node: the other replicas' checks are untouched.
        assert report.checks["exactly_once"].ok
        assert report.checks["token_uniqueness"].ok

    def test_foreign_commit_trips_initiation(self, clean_events):
        def corrupt(events):
            index = _first_of(events, taxonomy.LINEAGE_COMMIT, txn="T1")
            events[index]["node"] = "C"  # not the agent's home

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["initiation"].ok
        first = report.checks["initiation"].violations[0]
        assert "home" in first.message
        assert first.event["txn"] == "T1"

    def test_foreign_object_trips_initiation(self, clean_events):
        def corrupt(events):
            index = _first_of(events, taxonomy.LINEAGE_COMMIT, txn="T0")
            events[index]["objects"] = ["x", "zz-not-in-F"]

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["initiation"].ok
        assert "not in fragment" in (
            report.checks["initiation"].violations[0].message
        )

    def test_double_depart_trips_token_uniqueness(self, clean_events):
        def corrupt(events):
            index = _first_of(events, taxonomy.TOKEN_MOVE_DEPART)
            events.insert(index + 1, copy.deepcopy(events[index]))

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["token_uniqueness"].ok
        assert "in transit" in (
            report.checks["token_uniqueness"].violations[0].message
        )

    def test_commit_in_transit_trips_token_uniqueness(self, clean_events):
        def corrupt(events):
            commit = _first_of(events, taxonomy.LINEAGE_COMMIT, txn="T0")
            moved = events.pop(commit)
            depart = _first_of(events, taxonomy.TOKEN_MOVE_DEPART)
            events.insert(depart + 1, moved)

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["token_uniqueness"].ok
        assert "in transit" in (
            report.checks["token_uniqueness"].violations[0].message
        )

    def test_slot_conflict_trips_agreement(self, clean_events):
        def corrupt(events):
            # Node C claims T1 occupied T0's stream slot: same slots,
            # swapped transactions — order stays monotone, so only the
            # cross-node agreement check can catch it.
            i = _first_of(events, taxonomy.QT_INSTALL, source_txn="T0",
                          node="C")
            j = _first_of(events, taxonomy.QT_INSTALL, source_txn="T1",
                          node="C")
            events[i]["source_txn"], events[j]["source_txn"] = (
                events[j]["source_txn"],
                events[i]["source_txn"],
            )

        report = self.corrupt_and_audit(clean_events, corrupt)
        self.assert_only(report, "agreement")
        first = report.checks["agreement"].violations[0]
        assert "slot" in first.message or "disagree" in first.message

    def test_install_outside_replica_set_trips_replication(
        self, clean_events
    ):
        def corrupt(events):
            # The catalog claims F lives on A and B only; the trace's
            # installs at C are now replication-discipline violations.
            index = _first_of(events, taxonomy.SYSTEM_CATALOG)
            events[index]["fragments"]["F"]["replicas"] = ["A", "B"]

        report = self.corrupt_and_audit(clean_events, corrupt)
        assert not report.checks["replication"].ok
        first = report.checks["replication"].violations[0]
        assert "outside its replica set" in first.message
        assert first.event["node"] == "C"
        # The other per-node checks still hold at C — FIFO order and
        # slot agreement are about *how* installs happened, replication
        # about *where*.
        assert report.checks["fifo_order"].ok
        assert report.checks["agreement"].ok

    def test_catalog_without_replicas_skips_replication_check(
        self, clean_events
    ):
        def corrupt(events):
            # A trace recorded by an older release: no replica-set info.
            index = _first_of(events, taxonomy.SYSTEM_CATALOG)
            for spec in events[index]["fragments"].values():
                spec.pop("replicas", None)

        events = copy.deepcopy(clean_events)
        corrupt(events)
        report = audit_events(events, protocol="with-data")
        assert report.ok
        assert not report.checks["replication"].checked
        assert "replica-set" in report.checks["replication"].reason


class TestTraceFileRoundTrip:
    def test_audit_trace_groups_by_run(self, tmp_path, clean_events):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in clean_events:
                handle.write(
                    json.dumps({**event, "run": "with-data@0"},
                               default=str) + "\n"
                )
        reports = audit_trace(str(path))
        assert set(reports) == {"with-data@0"}
        report = reports["with-data@0"]
        assert report.protocol == "with-data"  # inferred from the label
        assert report.ok

    def test_write_report_json(self, tmp_path, clean_events):
        report = audit_events(clean_events, protocol="with-data",
                              run="with-data@0")
        out = tmp_path / "report.json"
        write_report(str(out), {"with-data@0": report})
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["runs"]["with-data@0"]["installs"] == report.installs

    def test_infer_protocol(self):
        assert infer_protocol("corrective@3") == "corrective"
        assert infer_protocol("with-data@17") == "with-data"
        assert infer_protocol("fa-unrestricted@0") is None
        assert infer_protocol("") is None

    def test_relaxation_table_never_relaxes_identity_checks(self):
        for relaxed in RELAXED_CHECKS.values():
            assert "exactly_once" not in relaxed
            assert "initiation" not in relaxed
            assert "token_uniqueness" not in relaxed


class TestTimeline:
    def test_timeline_orders_one_transaction(self, clean_events):
        timeline = build_timeline(clean_events, "T0")
        assert timeline, "T0 left a trail"
        types = [event["type"] for event in timeline]
        assert types.index(taxonomy.LINEAGE_COMMIT) < types.index(
            taxonomy.QT_INSTALL
        )
        for event in timeline:
            mentioned = (
                event.get("txn"),
                event.get("source_txn"),
                *(event.get("txns") or ()),
            )
            assert "T0" in mentioned

    def test_related_txns_walks_parent_links(self):
        events = [
            {"type": "span.begin", "txn": "rp:T1", "parent": "T1"},
            {"type": "span.begin", "txn": "T2"},
        ]
        assert related_txns(events, "T1") == {"T1", "rp:T1"}
        assert related_txns(events, "rp:T1") == {"T1", "rp:T1"}
        assert related_txns(events, "T2") == {"T2"}


class TestAvailabilityCheck:
    """The 8th check: blocked submissions must fall inside accounted
    windows (see repro.obs.availability)."""

    def catalog_event(self):
        return {
            "type": taxonomy.SYSTEM_CATALOG,
            "t": 0.0,
            "fragments": {
                "F": {
                    "agent": "ag",
                    "objects": ["x"],
                    "replicas": ["A", "B", "C"],
                }
            },
            "agents": {"ag": "A"},
            "nodes": ["A", "B", "C"],
        }

    def blocked_reject(self, t, reason="agent home 'A' is down"):
        return {
            "type": taxonomy.TXN_REJECT,
            "t": t,
            "txn": "T1",
            "agent": "ag",
            "reason": reason,
        }

    def test_blocked_reject_inside_window_passes(self):
        report = audit_events(
            [
                self.catalog_event(),
                {"type": taxonomy.NODE_CRASH, "t": 10.0, "node": "A"},
                self.blocked_reject(12.0),
                {"type": taxonomy.NODE_RECOVER, "t": 30.0, "node": "A"},
            ]
        )
        check = report.checks["availability"]
        assert check.checked
        assert check.violations == []

    def test_transit_reject_inside_window_passes(self):
        report = audit_events(
            [
                self.catalog_event(),
                {"type": taxonomy.TOKEN_MOVE_DEPART, "t": 5.0, "agent": "ag",
                 "src": "A", "dst": "B", "fragments": ["F"]},
                self.blocked_reject(
                    6.0, reason="token for 'F' is in transit"
                ),
                {"type": taxonomy.TOKEN_MOVE_ARRIVE, "t": 8.0, "agent": "ag",
                 "src": "A", "dst": "B", "fragments": ["F"]},
            ]
        )
        check = report.checks["availability"]
        assert check.checked
        assert check.violations == []

    def test_blocked_reject_without_outage_is_a_violation(self):
        report = audit_events(
            [self.catalog_event(), self.blocked_reject(12.0)]
        )
        check = report.checks["availability"]
        assert check.checked
        assert len(check.violations) == 1
        assert "no open write-unavailability window" in check.violations[0].message

    def test_ordinary_reject_is_ignored(self):
        report = audit_events(
            [
                self.catalog_event(),
                self.blocked_reject(12.0, reason="duplicate txn id"),
            ]
        )
        assert report.checks["availability"].violations == []

    def test_no_catalog_disables_the_check(self):
        report = audit_events([self.blocked_reject(12.0)])
        check = report.checks["availability"]
        assert not check.checked
        assert check.reason == "no system.catalog event in trace"
        assert report.ok  # skipped, not failed
