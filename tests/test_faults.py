"""Fault injection + reliable delivery: the lossy-substrate test suite.

Covers the three tentpole layers bottom-up: the seeded
:class:`FaultInjector` (loss, duplication, jitter, flaps), the
ack/retransmit :class:`ReliableTransport` beneath it, the reliable
broadcast's exactly-once/FIFO contract on top of both (as a Hypothesis
property), and the nemesis harness's seed-reproducibility.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.net.broadcast import ReliableBroadcast
from repro.net.faults import (
    MAX_LOSS_RATE,
    CrashEpisode,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    LossBurst,
)
from repro.net.network import Network
from repro.net.reliable import ReliableConfig, ReliableTransport
from repro.net.topology import Topology
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator


def make_net(nodes=("A", "B", "C"), latency=1.0):
    sim = Simulator()
    topo = Topology.full_mesh(list(nodes), latency)
    net = Network(sim, topo)
    return sim, topo, net


def attach_injector(net, plan, seed=11):
    return FaultInjector(net, plan, SeededRng(seed))


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(NetworkError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(NetworkError):
            FaultPlan(dup_rate=-0.1)
        with pytest.raises(NetworkError):
            FaultPlan(jitter=-1.0)

    def test_episode_windows_must_be_ordered(self):
        with pytest.raises(NetworkError):
            LossBurst(10.0, 10.0, 0.5)
        with pytest.raises(NetworkError):
            LinkFlap(5.0, "A", "B", 0.0)
        with pytest.raises(NetworkError):
            CrashEpisode("A", 10.0, 5.0)

    def test_message_faults_property(self):
        assert not FaultPlan().message_faults
        assert not FaultPlan(crashes=(CrashEpisode("A", 1.0, 2.0),)).message_faults
        assert FaultPlan(loss_rate=0.1).message_faults
        assert FaultPlan(bursts=(LossBurst(0.0, 1.0, 0.5),)).message_faults


class TestInjectorMessageFaults:
    def test_loss_drops_some_messages(self):
        sim, _topo, net = make_net()
        received = []
        net.register("B", received.append)
        net.register("A", lambda m: None)
        injector = attach_injector(net, FaultPlan(loss_rate=0.5))
        for _ in range(200):
            net.send("A", "B", "m", 0)
        sim.run()
        assert 0 < len(received) < 200
        assert injector.dropped == 200 - len(received)
        assert net.metrics.value("fault.messages_dropped") == injector.dropped

    def test_duplication_without_transport_delivers_twice(self):
        sim, _topo, net = make_net()
        received = []
        net.register("B", received.append)
        net.register("A", lambda m: None)
        injector = attach_injector(net, FaultPlan(dup_rate=1.0))
        net.send("A", "B", "m", 7)
        sim.run()
        assert [m.payload for m in received] == [7, 7]
        assert injector.duplicated == 1

    def test_jitter_perturbs_delivery_times(self):
        sim, _topo, net = make_net(latency=1.0)
        times = []
        net.register("B", lambda m: times.append(sim.now))
        net.register("A", lambda m: None)
        attach_injector(net, FaultPlan(jitter=5.0))
        for _ in range(20):
            net.send("A", "B", "m", 0)
        sim.run()
        assert any(t > 1.0 for t in times)
        assert all(1.0 <= t <= 6.0 for t in times)

    def test_same_seed_reproduces_the_exact_fault_sequence(self):
        outcomes = []
        for _ in range(2):
            sim, _topo, net = make_net()
            times = []
            net.register("B", lambda m, times=times, sim=sim: times.append(sim.now))
            net.register("A", lambda m: None)
            injector = attach_injector(
                net, FaultPlan(loss_rate=0.3, dup_rate=0.3, jitter=3.0), seed=42
            )
            for _ in range(50):
                net.send("A", "B", "m", 0)
            sim.run()
            outcomes.append((injector.dropped, injector.duplicated, times))
        assert outcomes[0] == outcomes[1]

    def test_loss_rate_is_capped(self):
        sim, _topo, net = make_net()
        received = []
        net.register("B", received.append)
        net.register("A", lambda m: None)
        plan = FaultPlan(
            loss_rate=0.9, bursts=(LossBurst(0.0, 1e9, 0.9),)
        )
        injector = attach_injector(net, plan)
        assert injector._loss_rate(
            type("M", (), {"src": "A", "dst": "B"})()
        ) == MAX_LOSS_RATE
        for _ in range(400):
            net.send("A", "B", "m", 0)
        sim.run()
        assert received  # 0.95 cap: some messages still get through

    def test_per_link_loss_override(self):
        sim, _topo, net = make_net()
        got_b, got_c = [], []
        net.register("A", lambda m: None)
        net.register("B", got_b.append)
        net.register("C", got_c.append)
        plan = FaultPlan(
            loss_rate=0.0, link_loss={frozenset(("A", "B")): 0.95}
        )
        attach_injector(net, plan)
        for _ in range(100):
            net.send("A", "B", "m", 0)
            net.send("A", "C", "m", 0)
        sim.run()
        assert len(got_c) == 100  # untouched link stays lossless
        assert len(got_b) < 100


class TestLinkFlaps:
    def test_flap_cuts_then_revives_the_link(self):
        sim, topo, net = make_net()
        times = []
        net.register("B", lambda m: times.append(sim.now))
        net.register("A", lambda m: None)
        injector = attach_injector(
            net, FaultPlan(flaps=(LinkFlap(10.0, "A", "B", 5.0),))
        )
        injector.install()
        sim.schedule_at(11.0, lambda: net.send("A", "B", "m", 0))
        sim.run()
        # A-B direct link is down 10..15, but the full mesh routes the
        # message via C at double latency; the flap only slows it.
        assert times == [13.0]
        assert topo.link("A", "B").up

    def test_flap_does_not_revive_a_link_someone_else_downed(self):
        sim, topo, net = make_net()
        net.register("A", lambda m: None)
        net.register("B", lambda m: None)
        injector = attach_injector(
            net, FaultPlan(flaps=(LinkFlap(10.0, "A", "B", 5.0),))
        )
        injector.install()
        sim.schedule_at(5.0, lambda: setattr(topo.link("A", "B"), "up", False))
        sim.run()
        assert not topo.link("A", "B").up  # not the flap's to revive

    def test_revive_guard_vetoes_the_flap_up(self):
        sim, topo, net = make_net()
        net.register("A", lambda m: None)
        net.register("B", lambda m: None)
        injector = attach_injector(
            net, FaultPlan(flaps=(LinkFlap(10.0, "A", "B", 5.0),))
        )
        injector.revive_guard = lambda a, b: False
        injector.install()
        sim.run()
        assert not topo.link("A", "B").up


class TestReliableTransport:
    def test_loss_is_recovered_exactly_once_in_order(self):
        sim, _topo, net = make_net()
        received = []
        net.register("B", received.append)
        net.register("A", lambda m: None)
        ReliableTransport(net, ReliableConfig(base_rto=3.0))
        attach_injector(net, FaultPlan(loss_rate=0.4, dup_rate=0.3))
        for index in range(40):
            net.send("A", "B", "m", index)
        sim.run()
        assert [m.payload for m in received] == list(range(40))

    def test_acks_retire_outstanding_packets(self):
        sim, _topo, net = make_net()
        net.register("B", lambda m: None)
        net.register("A", lambda m: None)
        transport = ReliableTransport(net)
        net.send("A", "B", "m", 1)
        assert transport.unacked_count() == 1
        sim.run()
        assert transport.unacked_count() == 0
        assert transport.retransmits == 0

    def test_retransmit_pauses_while_partitioned(self):
        sim, topo, net = make_net(nodes=("A", "B"))
        received = []
        net.register("B", received.append)
        net.register("A", lambda m: None)
        transport = ReliableTransport(net, ReliableConfig(base_rto=2.0))
        topo.link("A", "B").up = False
        net.send("A", "B", "m", 1)  # held by the network
        sim.schedule_at(50.0, lambda: setattr(topo.link("A", "B"), "up", True))
        sim.schedule_at(50.0, net.topology_changed)
        sim.run()
        assert [m.payload for m in received] == [1]
        assert transport.exhausted == 0
        # Timers fired throughout the outage without burning retries.
        assert net.metrics.value("retrans.paused") > 0

    def test_bounded_retries_give_up_loudly(self):
        sim, _topo, net = make_net(nodes=("A", "B"))
        net.register("B", lambda m: None)
        net.register("A", lambda m: None)
        transport = ReliableTransport(
            net, ReliableConfig(base_rto=1.0, max_retries=2)
        )
        attach_injector(
            net, FaultPlan(link_loss={frozenset(("A", "B")): 1.0}), seed=3
        )
        for index in range(20):
            net.send("A", "B", "m", index)
        sim.run(max_events=200_000)
        assert transport.exhausted > 0
        assert transport.unacked_count() == 0  # gave up, state freed
        assert net.metrics.value("retrans.exhausted") == transport.exhausted

    def test_backoff_schedule_is_exponential_and_capped(self):
        config = ReliableConfig(base_rto=4.0, max_rto=60.0)
        assert [config.rto(n) for n in range(6)] == [
            4.0, 8.0, 16.0, 32.0, 60.0, 60.0
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliableConfig(base_rto=0.0)
        with pytest.raises(ValueError):
            ReliableConfig(base_rto=10.0, max_rto=5.0)
        with pytest.raises(ValueError):
            ReliableConfig(max_retries=0)


class TestBroadcastUnderFaults:
    """The tentpole claim: reliable FIFO broadcast survives a lossy net."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.5),
        dup=st.floats(min_value=0.0, max_value=0.5),
        n_messages=st.integers(min_value=1, max_value=25),
    )
    def test_exactly_once_per_seq_and_per_sender_fifo(
        self, seed, loss, dup, n_messages
    ):
        sim, _topo, net = make_net(nodes=("A", "B", "C"))
        broadcast = ReliableBroadcast(net)
        delivered = {node: [] for node in ("A", "B", "C")}
        for node in ("A", "B", "C"):
            broadcast.attach(
                node,
                lambda sender, seq, body, node=node: delivered[node].append(
                    (sender, seq, body)
                ),
            )
        ReliableTransport(net, ReliableConfig(base_rto=3.0))
        attach_injector(
            net, FaultPlan(loss_rate=loss, dup_rate=dup, jitter=2.0), seed=seed
        )
        rng = SeededRng(seed + 1)
        scheduled = []
        for index in range(n_messages):
            sender = rng.choice(["A", "B"])
            body = (sender, index)
            at = rng.uniform(0.0, 30.0)
            scheduled.append((at, sender, body))
            sim.schedule_at(
                at, lambda s=sender, b=body: broadcast.broadcast(s, b)
            )
        # The broadcast order is sim-time order, not index order (stable
        # sort mirrors the simulator's (time, seq) tie-break).
        expected = {sender: [] for sender in ("A", "B")}
        for _at, sender, body in sorted(scheduled, key=lambda s: s[0]):
            expected[sender].append(body)
        sim.run(max_events=1_000_000)
        for node, events in delivered.items():
            # Exactly once per (sender, seq): no duplicates, no gaps.
            seen = [(sender, seq) for sender, seq, _body in events]
            assert len(seen) == len(set(seen)), (node, seed)
            for sender in ("A", "B"):
                bodies = [
                    body for s, _seq, body in events if s == sender
                ]
                # Per-sender FIFO, complete: the send order, verbatim.
                assert bodies == expected[sender], (node, sender, seed)


class TestNemesisReproducibility:
    def test_same_seed_same_outcome(self):
        from repro.analysis.nemesis import NemesisConfig, run_nemesis

        config = NemesisConfig(
            loss_rate=0.2, dup_rate=0.1, jitter=2.0,
            n_bursts=1, n_flaps=1, n_crashes=1, n_partitions=1,
        )
        first = run_nemesis(17, "with-seqno", config)
        second = run_nemesis(17, "with-seqno", config)
        assert first == second
        assert first.state_hash == second.state_hash

    def test_fault_free_config_disables_injection(self):
        from repro.analysis.nemesis import NemesisConfig, run_nemesis

        result = run_nemesis(
            3,
            "with-data",
            NemesisConfig(
                loss_rate=0.0, dup_rate=0.0, jitter=0.0, n_partitions=0
            ),
        )
        assert result.drops == 0
        assert result.retransmits == 0
