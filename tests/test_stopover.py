"""The Section 4.4 stopover-flight scenario: the plane is the token.

"Consider a flight which has stop-overs ...  It would be desirable, for
maximum availability, to make the computer at the airport where the
flight is making a stop the current agent for the seat assignment
fragment ...  Note that in this example the plane can be viewed as a
token for the seat assignment fragment."

The seat-assignment fragment hops PRG -> VIE -> ZRH with the plane
(move-with-data: the manifest travels on board), passengers board at
every stop — including stops whose airport is partitioned away from the
rest of the network — and the paper's guarantees hold the whole way.

Also covers the Section 4.4.1 parenthetical: "if the token was lost
because of a failure, it can be reconstituted through an election" —
modelled as a majority-protocol move away from a failed (isolated)
home node, which succeeds without the old home's participation.
"""

from repro import (
    FragmentedDatabase,
    MajorityCommitProtocol,
    MoveWithDataProtocol,
    RequestStatus,
)
from repro.cc.ops import Read, Write


def board(seat, passenger):
    def body(_ctx):
        current = yield Read(seat)
        if current is not None:
            return ("taken", current)
        yield Write(seat, passenger)
        return ("boarded", passenger)

    return body


class TestStopoverFlight:
    def make_db(self):
        db = FragmentedDatabase(
            ["PRG", "VIE", "ZRH", "HUB"], movement=MoveWithDataProtocol()
        )
        db.add_agent("plane", home_node="PRG")
        db.add_fragment(
            "SEATS", agent="plane", objects=["seat:1A", "seat:1B", "seat:2A"]
        )
        db.load({"seat:1A": None, "seat:1B": None, "seat:2A": None})
        db.finalize()
        return db

    def test_boarding_at_every_stop(self):
        db = self.make_db()
        t1 = db.submit_update("plane", board("seat:1A", "ada"),
                              writes=["seat:1A"])
        db.quiesce()
        db.move_agent("plane", "VIE", transport_delay=5.0)
        db.quiesce()
        t2 = db.submit_update("plane", board("seat:1B", "bob"),
                              writes=["seat:1B"])
        db.quiesce()
        db.move_agent("plane", "ZRH", transport_delay=5.0)
        db.quiesce()
        t3 = db.submit_update("plane", board("seat:2A", "eve"),
                              writes=["seat:2A"])
        db.quiesce()
        assert t1.succeeded and t2.succeeded and t3.succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        manifest = db.nodes["HUB"].store.snapshot()
        assert manifest == {
            "seat:1A": "ada", "seat:1B": "bob", "seat:2A": "eve"
        }

    def test_double_booking_impossible_across_stops(self):
        db = self.make_db()
        db.submit_update("plane", board("seat:1A", "ada"), writes=["seat:1A"])
        db.quiesce()
        db.move_agent("plane", "VIE", transport_delay=5.0)
        db.quiesce()
        # VIE is partitioned from everyone — but the plane carried the
        # manifest, so the taken seat is visible locally.
        db.partitions.partition_now([["VIE"], ["PRG", "ZRH", "HUB"]])
        tracker = db.submit_update(
            "plane", board("seat:1A", "mallory"), writes=["seat:1A"]
        )
        db.run(until=30)
        assert tracker.succeeded
        assert tracker.result == ("taken", "ada")
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["HUB"].store.read("seat:1A") == "ada"

    def test_boarding_during_partition_at_stop(self):
        db = self.make_db()
        db.move_agent("plane", "VIE", transport_delay=5.0)
        db.quiesce()
        db.partitions.partition_now([["VIE"], ["PRG", "ZRH", "HUB"]])
        tracker = db.submit_update(
            "plane", board("seat:2A", "carol"), writes=["seat:2A"]
        )
        db.run(until=30)
        assert tracker.succeeded  # maximum availability at the stop
        assert db.nodes["HUB"].store.read("seat:2A") is None  # not yet
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["HUB"].store.read("seat:2A") == "carol"

    def test_no_boarding_while_plane_in_the_air(self):
        db = self.make_db()
        db.move_agent("plane", "VIE", transport_delay=20.0)
        tracker = db.submit_update(
            "plane", board("seat:1A", "dan"), writes=["seat:1A"]
        )
        db.run(until=5)
        assert tracker.status is RequestStatus.REJECTED


class TestTokenReconstitution:
    def test_agent_escapes_failed_home_via_majority(self):
        """§4.4.1: the agent re-attaches elsewhere; the old home need
        not participate (its knowledge is reconstructed from a majority).
        """
        db = FragmentedDatabase(
            ["N0", "N1", "N2", "N3"], movement=MajorityCommitProtocol()
        )
        db.add_agent("ag", home_node="N0")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()

        def setx(value):
            def body(_ctx):
                yield Write("x", value)

            return body

        db.submit_update("ag", setx(1), writes=["x"])
        db.quiesce()
        # N0 "fails": isolated from everyone, indefinitely.
        db.partitions.partition_now([["N0"], ["N1", "N2", "N3"]])
        # The token is reconstituted at N1 (physically, the card/tape
        # survives the node; operationally, an election chose N1).
        db.move_agent("ag", "N1", transport_delay=1.0)
        db.run(until=30)
        tracker = db.submit_update("ag", setx(2), writes=["x"])
        db.run(until=60)
        assert tracker.succeeded  # service restored without N0
        for name in ("N1", "N2", "N3"):
            assert db.nodes[name].store.read("x") == 2
        # The failed node catches up whenever it returns.
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["N0"].store.read("x") == 2
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
