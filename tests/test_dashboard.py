"""Tests for the stdlib dashboard: payload assembly, HTML, live server."""

import json
import threading
import urllib.error
import urllib.request

from repro.obs import taxonomy
from repro.obs.dashboard import (
    HEATMAP_BUCKETS,
    build_dashboard_data,
    dashboard_from_trace,
    render_html,
    serve_dashboard,
)


def chaos_events(run="r1"):
    """A small trace with a catalog, a crash window, and one txn span."""
    return [
        {
            "type": taxonomy.SYSTEM_CATALOG,
            "t": 0.0,
            "run": run,
            "fragments": {"F": {"agent": "ag", "replicas": ["A", "B", "C"]}},
            "agents": {"ag": "A"},
            "nodes": ["A", "B", "C"],
        },
        {"type": taxonomy.SPAN_BEGIN, "t": 1.0, "run": run, "txn": "T1",
         "agent": "ag"},
        {"type": taxonomy.SPAN_END, "t": 4.0, "run": run, "txn": "T1",
         "status": "COMMITTED"},
        {"type": taxonomy.NODE_CRASH, "t": 50.0, "run": run, "node": "A"},
        {"type": taxonomy.NODE_RECOVER, "t": 75.0, "run": run, "node": "A"},
        {"type": taxonomy.TXN_COMMIT, "t": 80.0, "run": run, "txn": "T2"},
        {"type": taxonomy.TXN_COMMIT, "t": 100.0, "run": run, "txn": "T3"},
    ]


class TestBuildDashboardData:
    def test_payload_shape(self):
        data = build_dashboard_data(chaos_events())
        assert data["meta"]["events"] == 7
        assert data["meta"]["runs"] == ["r1"]
        assert data["meta"]["t_min"] == 0.0
        assert data["meta"]["t_max"] == 100.0
        assert "r1" in data["availability"]

    def test_spans_paired_from_begin_end(self):
        data = build_dashboard_data(chaos_events())
        assert data["spans"] == [
            {"txn": "T1", "agent": "ag", "start": 1.0, "end": 4.0,
             "status": "committed"}
        ]

    def test_heatmap_marks_the_crash_window(self):
        data = build_dashboard_data(chaos_events())
        rows = data["heatmap"]["rows"]
        assert [row["label"] for row in rows] == ["F"]
        cells = rows[0]["cells"]
        assert len(cells) == HEATMAP_BUCKETS
        # Window 50..75 over a 0..100 span: buckets in the middle are
        # fully unavailable, edges are clean.
        width = 100.0 / HEATMAP_BUCKETS
        mid = int(60.0 / width)
        assert cells[mid] == 1.0
        assert cells[0] == 0.0
        assert cells[-1] == 0.0
        assert "crash" in rows[0]["causes"][mid]

    def test_heatmap_labels_carry_run_when_multi_run(self):
        events = chaos_events("r1") + chaos_events("r2")
        data = build_dashboard_data(events)
        labels = sorted(r["label"] for r in data["heatmap"]["rows"])
        assert labels == ["F (r1)", "F (r2)"]

    def test_series_fall_back_to_event_rates(self):
        data = build_dashboard_data(chaos_events())
        names = [s["name"] for s in data["series"]]
        assert any(name.startswith("events: txn.") for name in names)
        for series in data["series"]:
            assert series["kind"] == "event-rate"
            assert len(series["points"]) == HEATMAP_BUCKETS

    def test_series_prefer_timeline_counters(self):
        timeline = {
            "counter": {
                "txn.committed": [
                    {"t": 10.0, "value": 3, "delta": 3},
                    {"t": 20.0, "value": 5, "delta": 2},
                ]
            },
            "gauge": {
                "sim.queue": [{"t": 10.0, "value": 7.0}],
            },
        }
        data = build_dashboard_data(chaos_events(), timeline)
        by_name = {s["name"]: s for s in data["series"]}
        assert by_name["txn.committed"]["kind"] == "counter-rate"
        assert by_name["txn.committed"]["points"] == [[10.0, 3], [20.0, 2]]
        assert by_name["sim.queue"]["kind"] == "gauge"

    def test_empty_trace_renders_without_error(self):
        data = build_dashboard_data([])
        html = render_html(data, title="empty")
        assert "<svg" not in html or html  # no crash is the contract
        assert "empty" in html


class TestRenderHtml:
    def test_contains_the_dashboard_sections(self):
        data = build_dashboard_data(chaos_events())
        html = render_html(data, title="t")
        assert "<svg" in html
        assert "viz-root" in html
        assert "availability" in html.lower()
        # Dark mode is selected, not flipped: both scopes present.
        assert 'prefers-color-scheme: dark' in html
        assert ':root[data-theme="dark"]' in html

    def test_static_page_carries_no_sse_script(self):
        data = build_dashboard_data(chaos_events())
        static = render_html(data, title="t", live=False)
        live = render_html(data, title="t", live=True)
        assert "EventSource" not in static
        assert "EventSource" in live

    def test_dashboard_from_trace_files(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            "".join(json.dumps(e) + "\n" for e in chaos_events()),
            encoding="utf-8",
        )
        timeline = tmp_path / "tl.jsonl"
        timeline.write_text(
            json.dumps(
                {"kind": "counter", "name": "txn.committed", "t": 10.0,
                 "value": 2, "delta": 2}
            )
            + "\n",
            encoding="utf-8",
        )
        html = dashboard_from_trace(str(trace), str(timeline))
        assert "txn.committed" in html
        assert "<svg" in html


class TestServeDashboard:
    def test_routes_and_sse(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            "".join(json.dumps(e) + "\n" for e in chaos_events()),
            encoding="utf-8",
        )
        server = serve_dashboard(
            str(trace), host="127.0.0.1", port=0,
            poll_interval=0.05, max_pings=1,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            with urllib.request.urlopen(f"{base}/", timeout=5) as response:
                page = response.read().decode("utf-8")
            assert "<svg" in page
            assert "EventSource" in page  # served pages are live
            with urllib.request.urlopen(
                f"{base}/data.json", timeout=5
            ) as response:
                payload = json.loads(response.read())
            assert payload["meta"]["events"] == 7

            # Grow the trace; the SSE stream must ping.
            def grow():
                with open(trace, "a", encoding="utf-8") as fh:
                    fh.write(
                        json.dumps(
                            {"type": taxonomy.TXN_COMMIT, "t": 110.0,
                             "run": "r1", "txn": "T4"}
                        )
                        + "\n"
                    )

            timer = threading.Timer(0.1, grow)
            timer.start()
            with urllib.request.urlopen(
                f"{base}/events", timeout=5
            ) as response:
                line = response.readline().decode("utf-8")
            timer.cancel()
            assert line.startswith("data: grew")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unknown_path_is_404(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("", encoding="utf-8")
        server = serve_dashboard(str(trace), host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            try:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
                raised = False
            except urllib.error.HTTPError as err:
                raised = err.code == 404
            assert raised
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
