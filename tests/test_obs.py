"""Tests for the observability layer: metrics, tracing, reconciliation."""

import json

import pytest

from repro import FragmentedDatabase
from repro.cc.ops import Read, Write
from repro.errors import DesignError
from repro.net.broadcast import ReliableBroadcast, SeqPayload
from repro.net.network import Network
from repro.net.topology import Topology
from repro.obs import (
    MetricsRegistry,
    Tracer,
    read_trace,
    summarize_trace,
    taxonomy,
)
from repro.sim.simulator import Simulator


def make_db(nodes=("A", "B", "C"), **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    return db


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        c1 = registry.counter("a")
        c1.inc()
        c1.inc(4)
        assert registry.counter("a") is c1
        assert registry.value("a") == 5

    def test_gauge_polls_at_read_time(self):
        registry = MetricsRegistry()
        box = [0]
        registry.gauge("g", lambda: box[0])
        box[0] = 7
        assert registry.value("g") == 7

    def test_histogram_summary_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_empty_histogram_summary(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary["count"] == 0
        assert summary["mean"] is None

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.gauge("g", lambda: 3)
        registry.observe("h", 1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 3}
        assert snap["histograms"]["h"]["count"] == 1
        # JSON-serializable end to end.
        json.dumps(snap)

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("net.sent")
        registry.inc("net.held")
        registry.inc("txn.committed")
        assert set(registry.counters_with_prefix("net.")) == {
            "net.sent",
            "net.held",
        }

    def test_unknown_value_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope")

    def test_histogram_sorted_view_cached_until_observe(self):
        hist = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist._sorted is None  # no summary asked for yet
        first = hist._ordered()
        assert first == [1.0, 2.0, 3.0]
        assert hist._ordered() is first  # cached, not re-sorted
        hist.observe(0.5)
        assert hist._sorted is None  # observe invalidates the cache
        assert hist.summary()["min"] == 0.5  # and the summary sees it

    def test_value_returns_histogram_summary(self):
        registry = MetricsRegistry()
        registry.observe("h", 2.0)
        registry.observe("h", 4.0)
        summary = registry.value("h")
        assert summary["count"] == 2
        assert summary["min"] == 2.0
        assert summary["max"] == 4.0
        assert summary == registry.histogram("h").summary()


class TestHistogramReservoir:
    """Bounded memory above RESERVOIR_SIZE; exact behaviour below it."""

    def test_exact_below_threshold(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("h")
        for value in range(RESERVOIR_SIZE):
            hist.observe(float(value))
        # Still verbatim: every sample held, percentiles exact.
        assert len(hist.values) == RESERVOIR_SIZE
        assert hist.count == RESERVOIR_SIZE
        assert hist.percentile(50) == RESERVOIR_SIZE // 2 - 1

    def test_memory_bounded_above_threshold(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("h")
        total = RESERVOIR_SIZE * 4
        for value in range(total):
            hist.observe(float(value))
        assert len(hist.values) == RESERVOIR_SIZE  # bounded
        assert hist.count == total  # true total, not the held subset

    def test_moments_exact_at_scale(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("h")
        total = RESERVOIR_SIZE * 3
        for value in range(1, total + 1):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == total
        assert summary["min"] == 1.0
        assert summary["max"] == float(total)
        assert summary["mean"] == pytest.approx((total + 1) / 2)

    def test_percentiles_representative_at_scale(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("h")
        total = RESERVOIR_SIZE * 5
        for value in range(total):
            hist.observe(float(value))
        # Uniform stream: the reservoir's p50 should sit near the true
        # median.  A generous 10% band keeps this robust to the seed.
        p50 = hist.percentile(50)
        assert abs(p50 - total / 2) < total * 0.10

    def test_reservoir_deterministic_per_name(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        def fill(name):
            hist = MetricsRegistry().histogram(name)
            for value in range(RESERVOIR_SIZE * 2):
                hist.observe(float(value))
            return list(hist.values)

        assert fill("same") == fill("same")  # seeded from the name


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.emit("x", a=1)
        assert len(tracer) == 0
        assert tracer.emitted == 0

    def test_enabled_tracer_records(self):
        tracer = Tracer(enabled=True)
        tracer.emit("x", a=1)
        (event,) = tracer.events()
        assert event.type == "x"
        assert event.fields == {"a": 1}
        assert event.time == 0.0

    def test_exclusion_filter(self):
        tracer = Tracer(enabled=True, exclude={"noise"})
        tracer.emit("noise")
        tracer.emit("signal")
        assert [e.type for e in tracer] == ["signal"]

    def test_default_exclude_suppresses_sim_fire(self):
        tracer = Tracer(enabled=True)
        tracer.emit(taxonomy.SIM_FIRE, label="x")
        assert len(tracer) == 0

    def test_ring_buffer_caps_memory(self):
        tracer = Tracer(enabled=True, ring_size=8)
        for i in range(20):
            tracer.emit("e", i=i)
        assert len(tracer) == 8
        assert tracer.emitted == 20
        assert [e.fields["i"] for e in tracer] == list(range(12, 20))

    def test_clock_stamps_events(self):
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0], enabled=True)
        tracer.emit("a")
        now[0] = 4.5
        tracer.emit("b")
        assert [e.time for e in tracer] == [0.0, 4.5]

    def test_events_and_counts_prefix_filter(self):
        tracer = Tracer(enabled=True)
        tracer.emit("message.send")
        tracer.emit("message.send")
        tracer.emit("txn.commit")
        assert len(tracer.events("message.")) == 2
        assert tracer.counts("message.") == {"message.send": 2}
        assert tracer.counts() == {"message.send": 2, "txn.commit": 1}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True)
        tracer.open_jsonl(path, context={"run": "unit"})
        tracer.emit("message.send", src="A", dst="B", kind="qt")
        tracer.emit("txn.commit", txn="T1")
        tracer.close()
        records = list(read_trace(path))
        assert [r["type"] for r in records] == ["message.send", "txn.commit"]
        assert all(r["run"] == "unit" for r in records)
        summary = summarize_trace(path)
        assert summary.total == 2
        assert summary.count("message.send") == 1
        assert summary.count("txn.commit", run="unit") == 1
        assert summary.message_kinds == {"message.send:qt": 1}

    def test_jsonl_sink_stringifies_unserializable(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True)
        tracer.open_jsonl(path)
        tracer.emit("x", obj=object())
        tracer.close()
        (record,) = read_trace(path)
        assert isinstance(record["obj"], str)

    def test_sink_flushes_periodically(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, flush_every=2)
        tracer.open_jsonl(path)
        tracer.emit("a")
        assert tracer._unflushed == 1
        tracer.emit("b")  # hits flush_every: sink flushed to disk
        assert tracer._unflushed == 0
        assert [r["type"] for r in read_trace(path)] == ["a", "b"]
        tracer.close()

    def test_manual_flush_drains_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, flush_every=0)  # periodic off
        tracer.open_jsonl(path)
        for index in range(5):
            tracer.emit("e", i=index)
        assert tracer._unflushed == 5
        tracer.flush()
        assert tracer._unflushed == 0
        assert len(list(read_trace(path))) == 5
        tracer.close()


class TestBroadcastAccounting:
    """S4: duplicate replays must not inflate out_of_order_buffered and
    drained channel buffers must be released."""

    def make(self, nodes=("A", "B")):
        sim = Simulator()
        net = Network(sim, Topology.full_mesh(nodes))
        bcast = ReliableBroadcast(net)
        logs = {n: [] for n in nodes}
        for n in nodes:
            bcast.attach(n, lambda s, q, b, n=n: logs[n].append((s, q, b)))
        return sim, net, bcast, logs

    def test_same_seq_replay_counts_once(self):
        sim, net, bcast, logs = self.make()
        bcast._process("B", SeqPayload("A", 1, "k", "second"))
        bcast._process("B", SeqPayload("A", 1, "k", "second-replay"))
        assert bcast.out_of_order_buffered == 1
        assert bcast.duplicates_dropped == 1
        assert net.metrics.value("bcast.out_of_order_buffered") == 1
        assert net.metrics.value("bcast.duplicates_dropped") == 1
        bcast._process("B", SeqPayload("A", 0, "k", "first"))
        assert [b for (_s, _q, b) in logs["B"]] == ["first", "second"]

    def test_drained_channel_buffer_is_released(self):
        sim, net, bcast, logs = self.make()
        bcast._process("B", SeqPayload("A", 2, "k", "third"))
        bcast._process("B", SeqPayload("A", 1, "k", "second"))
        assert bcast.buffered_count() == 2
        bcast._process("B", SeqPayload("A", 0, "k", "first"))
        assert [b for (_s, _q, b) in logs["B"]] == ["first", "second", "third"]
        assert bcast.buffered_count() == 0
        assert bcast._buffer == {}  # channel dict dropped, not leaked
        assert net.metrics.value("bcast.drained") == 2

    def test_stale_duplicate_counted(self):
        sim, net, bcast, logs = self.make()
        bcast._process("B", SeqPayload("A", 0, "k", "x"))
        bcast._process("B", SeqPayload("A", 0, "k", "x-again"))
        assert bcast.duplicates_dropped == 1
        assert len(logs["B"]) == 1


class TestSimulatorPending:
    def test_pending_is_maintained_not_scanned(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        assert sim.pending == 4
        sim.run(until=3.0)
        assert sim.pending == 2

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        handle.cancel()  # already fired: must be a no-op
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0


class TestSystemObservability:
    def test_snapshot_counts_transactions(self):
        db = make_db()
        for _ in range(3):
            db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        snap = db.snapshot()
        assert snap["counters"]["txn.submitted"] == 3
        assert snap["counters"]["txn.committed"] == 3
        assert snap["counters"]["qt.installed"] >= 6  # two replicas
        assert snap["histograms"]["txn.commit_latency"]["count"] == 3
        assert snap["gauges"]["net.held_now"] == 0

    def test_enable_tracing_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        db = make_db()
        db.enable_tracing(path, context={"run": "t"})
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        db.tracer.close()
        summary = summarize_trace(path)
        assert summary.count("txn.submit") == 1
        assert summary.count("txn.commit") == 1
        assert summary.count("message.send") > 0

    def test_tracer_clock_is_sim_time(self):
        db = make_db()
        db.enable_tracing()
        db.sim.schedule_at(
            7.0,
            lambda: db.submit_update("ag", bump(), writes=["x"]),
            label="late submit",
        )
        db.quiesce()
        (submit,) = db.tracer.events(taxonomy.TXN_SUBMIT)
        assert submit.time == 7.0

    def test_node_crash_recover_traced_and_counted(self):
        db = make_db()
        db.enable_tracing()
        db.fail_node("B")
        db.recover_node("B")
        db.quiesce()
        assert db.metrics.value("node.crashes") == 1
        assert db.metrics.value("node.recoveries") == 1
        assert [e.type for e in db.tracer.events("node.")] == [
            taxonomy.NODE_CRASH,
            taxonomy.NODE_RECOVER,
        ]

    def test_multi_fragment_agent_warns_not_raises(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("big", home_node="A")
        db.add_fragment("F1", agent="big", objects=["a"])
        db.add_fragment("F2", agent="big", objects=["b"])
        db.enable_tracing()
        mapping = db.agent_fragments
        assert mapping == {}
        assert db.metrics.value("lsg.untyped_agents") == 1
        warnings = db.tracer.events(taxonomy.WARN_MULTI_FRAGMENT_AGENT)
        assert len(warnings) == 1
        assert warnings[0].fields["agent"] == "big"
        # Deduped: a second read does not warn again.
        db.agent_fragments
        assert db.metrics.value("lsg.untyped_agents") == 1

    def test_agent_fragment_map_strict_raises(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("big", home_node="A")
        db.add_fragment("F1", agent="big", objects=["a"])
        db.add_fragment("F2", agent="big", objects=["b"])
        with pytest.raises(DesignError, match="two or more fragments"):
            db.agent_fragment_map(strict=True)

    def test_single_fragment_agents_still_typed(self):
        db = make_db()
        assert db.agent_fragment_map(strict=True) == {"ag": "F"}


class TestReconciliation:
    """The trace must reconcile exactly with the network counters."""

    def run_partitioned(self):
        db = make_db()
        db.enable_tracing()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        db.partitions.partition_now([["A"], ["B", "C"]])
        for _ in range(3):
            db.submit_update("ag", bump(), writes=["x"])
        db.run(until=db.sim.now + 10)
        return db

    def assert_reconciled(self, db):
        counts = db.tracer.counts("message.")
        assert counts.get("message.send", 0) == db.network.messages_sent
        assert (
            counts.get("message.deliver", 0) == db.network.messages_delivered
        )
        held = counts.get("message.hold", 0) - counts.get(
            "message.release", 0
        )
        assert held == db.network.held_count()
        # Registry counters agree with the plain attributes too.
        assert (
            db.metrics.value("net.messages_sent") == db.network.messages_sent
        )
        assert (
            db.metrics.value("net.messages_delivered")
            == db.network.messages_delivered
        )
        assert db.metrics.value("net.held_now") == db.network.held_count()

    def test_mid_partition_reconciles(self):
        db = self.run_partitioned()
        assert db.network.held_count() > 0  # partition actually held some
        self.assert_reconciled(db)

    def test_post_heal_reconciles(self):
        db = self.run_partitioned()
        db.partitions.heal_now()
        db.quiesce()
        self.assert_reconciled(db)
        assert db.network.held_count() == 0
        assert db.mutual_consistency().consistent

    def test_crash_recovery_run_reconciles(self):
        db = make_db()
        db.enable_tracing()
        db.submit_update("ag", bump(), writes=["x"])
        db.quiesce()
        db.fail_node("C")
        db.submit_update("ag", bump(), writes=["x"])
        db.run(until=db.sim.now + 5)
        self.assert_reconciled(db)
        db.recover_node("C")
        db.quiesce()
        self.assert_reconciled(db)


class TestTraceGolden:
    """Exact event tally of the deterministic Section 2 banking run."""

    def test_banking_scenario_event_counts(self, tmp_path):
        from repro.workloads import BankingWorkload

        path = str(tmp_path / "golden.jsonl")
        db = FragmentedDatabase(["A", "B"])
        db.enable_tracing(path, context={"run": "golden"})
        bank = BankingWorkload(
            db,
            accounts={"00001": 300.0},
            central_node="A",
            owners={"00001": [("alice", "A"), ("bob", "B")]},
            view_mode="balance",
        )
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        bank.withdraw("00001", 200.0, owner=0)
        bank.withdraw("00001", 200.0, owner=1)
        db.run(until=20)
        db.partitions.heal_now()
        db.quiesce()
        db.tracer.close()

        summary = summarize_trace(path)
        assert summary.by_type == {
            "lineage.commit": 6,
            "lineage.deliver": 12,
            "lineage.enqueue": 6,
            "lineage.send": 6,
            "message.deliver": 6,
            "message.hold": 4,
            "message.release": 4,
            "message.send": 6,
            "partition.cut": 1,
            "partition.heal": 1,
            "qt.install": 6,
            "span.begin": 6,
            "span.end": 6,
            "system.catalog": 1,
            "txn.commit": 6,
            "txn.submit": 6,
        }
        assert summary.message_kinds == {
            "message.deliver:qt": 6,
            "message.hold:qt": 4,
            "message.release:qt": 4,
            "message.send:qt": 6,
        }
        # The ring buffer saw the identical stream.
        assert db.tracer.counts() == summary.by_type


class TestHistogramPercentileEdges:
    """percentile() on the boundary inputs the sampler leans on."""

    def test_empty_histogram_is_none(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(50) is None
        assert hist.percentile(0) is None
        assert hist.percentile(100) is None

    def test_single_sample_answers_every_percentile(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0

    def test_p0_and_p100_clamp_to_min_and_max(self):
        hist = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_nearest_rank_on_small_sets(self):
        hist = MetricsRegistry().histogram("h")
        for value in (10.0, 20.0, 30.0, 40.0):
            hist.observe(value)
        assert hist.percentile(50) == 20.0  # nearest-rank, not midpoint
        assert hist.percentile(75) == 30.0

    def test_reservoir_truncated_percentiles_stay_in_range(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("h")
        total = RESERVOIR_SIZE + 500
        for value in range(total):
            hist.observe(float(value))
        # Past the reservoir the answer is an estimate, but it must be
        # a genuinely observed value inside the stream's range.
        for p in (0, 50, 100):
            estimate = hist.percentile(p)
            assert 0.0 <= estimate <= float(total - 1)
        assert hist.percentile(100) <= hist.summary()["max"]


class TestTraceSummaryEdges:
    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"type": "a", "t": 1.0}\n\n   \n{"type": "b", "t": 2.0}\n',
            encoding="utf-8",
        )
        assert [r["type"] for r in read_trace(str(path))] == ["a", "b"]

    def test_empty_file_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("", encoding="utf-8")
        summary = summarize_trace(str(path))
        assert summary.total == 0
        assert summary.by_type == {}
        assert summary.time_span is None

    def test_by_run_and_time_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            {"type": "txn.commit", "t": 5.0, "run": "r1"},
            {"type": "txn.commit", "t": 9.0, "run": "r2"},
            {"type": "txn.abort", "t": 1.5},  # no run context
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        summary = summarize_trace(str(path))
        assert summary.time_span == (1.5, 9.0)
        assert summary.count("txn.commit") == 2
        assert summary.count("txn.commit", run="r1") == 1
        assert summary.count("txn.commit", run="missing") == 0
        assert summary.by_run == {
            "r1": {"txn.commit": 1},
            "r2": {"txn.commit": 1},
        }


class TestTracerAtexitFlush:
    """The trace tail survives a run that never reaches close()."""

    def test_flush_open_sinks_flushes_unflushed_tail(self, tmp_path):
        from repro.obs.trace import _flush_open_sinks

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, flush_every=1000)
        tracer.open_jsonl(path)
        tracer.emit("txn.commit", txn="T1")
        assert list(read_trace(path)) == []  # buffered, not yet on disk
        _flush_open_sinks()
        assert [r["type"] for r in read_trace(path)] == ["txn.commit"]
        tracer.close()

    def test_closed_sink_is_deregistered(self, tmp_path):
        from repro.obs import trace as trace_module

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True)
        tracer.open_jsonl(path)
        assert tracer in trace_module._OPEN_SINKS
        tracer.close()
        assert tracer not in trace_module._OPEN_SINKS

    def test_killed_run_keeps_the_tail(self, tmp_path):
        """Regression: a script that exits without close() used to lose
        up to flush_every - 1 records; the atexit hook flushes them."""
        import subprocess
        import sys

        path = str(tmp_path / "trace.jsonl")
        script = (
            "import sys\n"
            "from repro.obs.trace import Tracer\n"
            "tracer = Tracer(enabled=True, flush_every=1000)\n"
            f"tracer.open_jsonl({path!r})\n"
            "tracer.emit('txn.commit', txn='T1')\n"
            "tracer.emit('txn.abort', txn='T2')\n"
            "sys.exit(3)  # abnormal exit, close() never called\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 3
        assert [r["type"] for r in read_trace(path)] == [
            "txn.commit",
            "txn.abort",
        ]
