"""End-to-end workload invariants under randomized traffic and partitions.

Banking: money is conserved — after quiescence every account's balance
equals initial + recorded deposits − recorded withdrawals − fines, and
the local view equals the balance everywhere (everything folded).

Airline: overbooking is structurally impossible no matter how requests,
scans, and partitions interleave.
"""

from hypothesis import given, settings, strategies as st

from repro import FragmentedDatabase
from repro.sim.rng import SeededRng
from repro.workloads import AirlineWorkload, BankingWorkload
from repro.workloads.generator import BankingDriver, generate_script


def run_random_banking(seed):
    rng = SeededRng(seed)
    nodes = ["HQ", "B1", "B2"]
    db = FragmentedDatabase(nodes, seed=seed)
    accounts = {f"a{i}": 200.0 for i in range(3)}
    bank = BankingWorkload(
        db,
        accounts,
        central_node="HQ",
        owners={
            account: [
                (f"{account}-o{j}", nodes[(i + j) % 3]) for j in range(2)
            ]
            for i, account in enumerate(accounts)
        },
        view_mode="balance",
        overdraft_fine=25.0,
    )
    db.finalize()
    driver = BankingDriver(db, bank)
    script = generate_script(
        rng.fork("script"),
        list(accounts),
        horizon=120.0,
        mean_interarrival=4.0,
        withdraw_fraction=0.6,
        owners_per_account=2,
    )
    driver.schedule(script)
    # A random partition episode.
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    cut = rng.randint(1, 2)
    start = rng.uniform(0, 60.0)
    end = rng.uniform(start + 5, 150.0)
    db.sim.schedule_at(
        start,
        lambda: db.partitions.partition_now(
            [shuffled[:cut], shuffled[cut:]]
        ),
    )
    db.sim.schedule_at(end, db.partitions.heal_now)
    db.quiesce()
    return db, bank, accounts


class TestBankingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3000))
    def test_money_conserved_and_fully_folded(self, seed):
        db, bank, accounts = run_random_banking(seed)
        store = db.nodes["HQ"].store
        fines = {}
        for letter in bank.stats.letters:
            fines[letter.account] = fines.get(letter.account, 0.0) + letter.fine
        for account in accounts:
            total_dep = sum(
                store.read(f"act:{account}:{owner}:dep")
                for owner, _ in bank.owners[account]
            )
            total_wd = sum(
                store.read(f"act:{account}:{owner}:wd")
                for owner, _ in bank.owners[account]
            )
            expected = (
                accounts[account]
                + total_dep
                - total_wd
                - fines.get(account, 0.0)
            )
            assert abs(bank.balance_at(account, "HQ") - expected) < 1e-6
            # Everything folded: the local view equals the raw balance.
            assert abs(
                bank.local_view(account, "HQ")
                - bank.balance_at(account, "HQ")
            ) < 1e-6

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3000))
    def test_replicas_converge_and_fragmentwise_holds(self, seed):
        db, bank, accounts = run_random_banking(seed)
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        violations = db.predicates.evaluate(db.nodes["HQ"].store)
        assert violations.single == 0  # never single-fragment

    def test_some_seed_produces_an_overdraft(self):
        """The scenario has teeth: fines actually occur somewhere."""
        assert any(
            run_random_banking(seed)[1].stats.letters for seed in range(12)
        )


def run_random_airline(seed):
    rng = SeededRng(seed)
    nodes = ["N1", "N2", "N3", "N4"]
    db = FragmentedDatabase(nodes, seed=seed)
    airline = AirlineWorkload(
        db,
        customer_homes={"c1": "N1", "c2": "N2", "c3": "N1"},
        flight_homes={"f1": "N3", "f2": "N4"},
        capacity=4,
    )
    db.finalize()
    for _ in range(10):
        customer = rng.choice(["c1", "c2", "c3"])
        flight = rng.choice(["f1", "f2"])
        seats = rng.randint(1, 3)
        db.sim.schedule_at(
            rng.uniform(0, 60.0),
            lambda c=customer, f=flight, s=seats: airline.request(c, f, s),
        )
    for tick in range(10, 120, 15):
        db.sim.schedule_at(
            float(tick),
            lambda: (airline.scan_flight("f1"), airline.scan_flight("f2")),
        )
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    cut = rng.randint(1, 3)
    db.sim.schedule_at(
        rng.uniform(0, 40.0),
        lambda: db.partitions.partition_now([shuffled[:cut], shuffled[cut:]]),
    )
    db.sim.schedule_at(rng.uniform(60.0, 110.0), db.partitions.heal_now)
    db.quiesce()
    return db, airline


class TestAirlineInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3000))
    def test_never_overbooked_anywhere(self, seed):
        db, airline = run_random_airline(seed)
        for flight in ("f1", "f2"):
            for node in db.nodes:
                assert airline.seats_reserved(flight, node) <= 4, (
                    seed, flight, node
                )
        violations = db.predicates.evaluate(db.nodes["N3"].store)
        assert violations.single == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3000))
    def test_grants_never_exceed_requests(self, seed):
        db, airline = run_random_airline(seed)
        store = db.nodes["N3"].store
        for flight in ("f1", "f2"):
            for customer in ("c1", "c2", "c3"):
                granted = store.read(f"f:{flight}:{customer}")
                requested = store.read(f"c:{customer}:{flight}")
                assert granted == 0 or granted == requested

    def test_capacity_pressure_actually_denies_someone(self):
        denied = sum(
            run_random_airline(seed)[1].stats.denied_overbooking
            for seed in range(10)
        )
        assert denied > 0
