"""Concurrent-writer regression tests for the observability layer.

The asyncio backend bumps counters and emits trace events from its
loop thread while HTTP front-door threads read and write the same
objects.  These tests hammer the shared structures from many threads
and assert nothing is lost or torn.
"""

import json
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

THREADS = 8
ROUNDS = 5_000


def hammer(n_threads, fn):
    barrier = threading.Barrier(n_threads)

    def run(worker):
        barrier.wait()
        fn(worker)

    threads = [
        threading.Thread(target=run, args=(w,)) for w in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_counter_bumps_are_exact_under_contention():
    registry = MetricsRegistry()
    counter = registry.counter("hot")  # cached ref, like the hot paths
    registry.enable_thread_safety()
    assert registry.thread_safe
    # enable_thread_safety() must retrofit the lock onto the *existing*
    # object: protocol code caches counter references at construction.
    hammer(THREADS, lambda _w: [counter.inc() for _ in range(ROUNDS)])
    assert counter.value == THREADS * ROUNDS


def test_histogram_observations_are_exact_under_contention():
    registry = MetricsRegistry()
    registry.enable_thread_safety()
    histogram = registry.histogram("lat")
    hammer(
        THREADS,
        lambda w: [histogram.observe(float(w)) for _ in range(ROUNDS)],
    )
    assert histogram.count == THREADS * ROUNDS
    summary = histogram.summary()
    assert summary["count"] == THREADS * ROUNDS


def test_registry_creation_race_yields_one_instance():
    registry = MetricsRegistry()
    registry.enable_thread_safety()
    seen = []
    lock = threading.Lock()

    def create(worker):
        counter = registry.counter("raced")
        with lock:
            seen.append(counter)

    hammer(THREADS, create)
    assert len({id(counter) for counter in seen}) == 1


def test_enable_thread_safety_is_idempotent():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    registry.enable_thread_safety()
    lock = counter._lock
    registry.enable_thread_safety()
    assert counter._lock is lock
    counter.inc(3)
    assert registry.value("c") == 3


def test_tracer_concurrent_emits_whole_jsonl_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(clock=lambda: 1.0, enabled=True)
    tracer.open_jsonl(str(path))
    per_thread = 500

    def emit(worker):
        for i in range(per_thread):
            tracer.emit("test.event", worker=worker, i=i)

    hammer(THREADS, emit)
    tracer.close()
    lines = path.read_text().splitlines()
    assert len(lines) == THREADS * per_thread
    # Every line parses — no interleaved halves from concurrent writers.
    records = [json.loads(line) for line in lines]
    assert all(record["type"] == "test.event" for record in records)
    assert tracer.emitted == THREADS * per_thread
    # Per-worker sequence numbers all arrived exactly once.
    for worker in range(THREADS):
        got = sorted(r["i"] for r in records if r["worker"] == worker)
        assert got == list(range(per_thread))


def test_tracer_ring_snapshot_while_emitting():
    tracer = Tracer(clock=lambda: 0.0, enabled=True, ring_size=256)
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            tracer.emit("spin.event")

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(200):
            events = tracer.events()  # must never raise mid-append
            assert len(events) <= 256
            tracer.counts()
    finally:
        stop.set()
        thread.join()
