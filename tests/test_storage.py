"""Tests for versioned values, object stores, and update logs."""

import pytest

from repro.errors import ReproError
from repro.storage import LogRecord, ObjectStore, UpdateLog, Version


class TestVersion:
    def test_defaults_are_initial(self):
        version = Version(42)
        assert version.writer == "@init"
        assert version.version_no == 0

    def test_newer_than_by_version_no(self):
        older = Version(1, "T1", 1, 5.0)
        newer = Version(2, "T2", 2, 3.0)
        assert newer.newer_than(older)
        assert not older.newer_than(newer)

    def test_newer_than_ties_break_by_timestamp(self):
        a = Version(1, "T1", 3, 5.0)
        b = Version(2, "T2", 3, 7.0)
        assert b.newer_than(a)
        assert not a.newer_than(b)

    def test_frozen(self):
        version = Version(1)
        with pytest.raises(AttributeError):
            version.value = 2


class TestObjectStore:
    def test_load_and_read(self):
        store = ObjectStore("n")
        store.load({"x": 10, "y": "hello"})
        assert store.read("x") == 10
        assert store.read_version("y").writer == "@init"

    def test_unknown_object_raises(self):
        store = ObjectStore("n")
        with pytest.raises(ReproError):
            store.read("missing")

    def test_install_returns_previous(self):
        store = ObjectStore("n")
        store.load({"x": 1})
        previous = store.install("x", Version(2, "T1", 1, 1.0))
        assert previous.value == 1
        assert store.read("x") == 2

    def test_install_creates_new_object(self):
        store = ObjectStore("n")
        assert store.install("fresh", Version(9, "T1", 1, 1.0)) is None
        assert store.exists("fresh")

    def test_snapshot_subset(self):
        store = ObjectStore("n")
        store.load({"x": 1, "y": 2, "z": 3})
        assert store.snapshot(["x", "z"]) == {"x": 1, "z": 3}
        assert store.snapshot() == {"x": 1, "y": 2, "z": 3}

    def test_diff_values(self):
        a, b = ObjectStore("a"), ObjectStore("b")
        a.load({"x": 1, "y": 2})
        b.load({"x": 1, "y": 99})
        assert a.diff(b) == ["y"]

    def test_diff_missing_objects(self):
        a, b = ObjectStore("a"), ObjectStore("b")
        a.load({"x": 1, "extra": 5})
        b.load({"x": 1})
        assert a.diff(b) == ["extra"]

    def test_diff_identical(self):
        a, b = ObjectStore("a"), ObjectStore("b")
        a.load({"x": 1})
        b.load({"x": 1})
        assert a.diff(b) == []

    def test_counters(self):
        store = ObjectStore("n")
        store.load({"x": 1})
        store.read("x")
        store.read("x")
        store.install("x", Version(2, "T", 1, 0.0))
        assert store.reads == 2
        assert store.writes == 1

    def test_diff_ignores_version_metadata(self):
        # Mutual consistency is about values; two replicas that applied
        # the same value via different repackaged transactions agree.
        a, b = ObjectStore("a"), ObjectStore("b")
        a.install("x", Version(7, "T1", 1, 1.0))
        b.install("x", Version(7, "rp:T1", 2, 9.0))
        assert a.diff(b) == []


class TestUpdateLog:
    def test_append_and_iterate(self):
        log = UpdateLog("n")
        log.append(LogRecord("T1", "n", 1.0, {"x": 1}))
        log.append(LogRecord("T2", "n", 2.0, {"y": 2}))
        assert len(log) == 2
        assert [r.txn_id for r in log] == ["T1", "T2"]

    def test_since_uses_seq_cursors(self):
        # Cursors are sequence numbers, not timestamps: zero-latency
        # loopback events stamp several records with the same float
        # time, which a strictly-greater timestamp filter would skip.
        log = UpdateLog("n")
        stored = [
            log.append(LogRecord(f"T{i}", "n", 1.0, {})) for i in range(3)
        ]
        assert [r.seq for r in stored] == [0, 1, 2]
        assert [r.txn_id for r in log.since(1)] == ["T1", "T2"]
        assert [r.txn_id for r in log.since(stored[-1].seq + 1)] == []
        assert log.since(log.cursor()) == []

    def test_cursor_survives_truncate(self):
        log = UpdateLog("n")
        log.append(LogRecord("T1", "n", 1.0, {}))
        cursor = log.cursor()
        log.truncate()
        assert log.cursor() == cursor
        stored = log.append(LogRecord("T2", "n", 2.0, {}))
        assert stored.seq == cursor
        assert [r.txn_id for r in log.since(cursor)] == ["T2"]

    def test_records_returns_copy(self):
        log = UpdateLog("n")
        log.append(LogRecord("T1", "n", 1.0, {}))
        records = log.records()
        records.clear()
        assert len(log) == 1

    def test_truncate(self):
        log = UpdateLog("n")
        log.append(LogRecord("T1", "n", 1.0, {}))
        assert log.truncate() == 1
        assert len(log) == 0
