"""Tests for the Section 4.1-4.3 control strategies."""

import pytest

from repro import (
    AcyclicReadsStrategy,
    FragmentedDatabase,
    ReadLocksStrategy,
    RequestStatus,
    UnrestrictedReadsStrategy,
    scripted_body,
)
from repro.cc.ops import Read, Write
from repro.errors import DesignError


def two_agent_db(strategy, nodes=("A", "B"), declare=True):
    """ag1@A owns F1{x}; ag2@B owns F2{y}; F1's transactions read F2."""
    db = FragmentedDatabase(list(nodes), strategy=strategy)
    db.add_agent("ag1", home_node=nodes[0])
    db.add_agent("ag2", home_node=nodes[1])
    db.add_fragment("F1", agent="ag1", objects=["x"])
    db.add_fragment("F2", agent="ag2", objects=["y"])
    db.load({"x": 0, "y": 0})
    if declare:
        db.declare_reads("F1", fragments=["F2"])
    return db


def read_y_write_x(value):
    def body(_ctx):
        y = yield Read("y")
        yield Write("x", value + y)
        return y

    return body


def write_y(value):
    def body(_ctx):
        yield Write("y", value)

    return body


class TestReadLocksStrategy:
    def test_cross_fragment_read_succeeds_when_connected(self):
        db = two_agent_db(ReadLocksStrategy())
        db.finalize()
        db.submit_update("ag2", write_y(10), writes=["y"])
        db.quiesce()
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.quiesce()
        assert tracker.succeeded
        assert tracker.result == 10
        assert db.nodes["A"].store.read("x") == 11

    def test_reader_sees_fresh_value_despite_replica_lag(self):
        """The grant pins the lock site's current version."""
        db = two_agent_db(ReadLocksStrategy())
        db.finalize()
        # Cut the network so ag2's update cannot reach A's replica...
        db.partitions.partition_now([["A"], ["B"]])
        db.submit_update("ag2", write_y(10), writes=["y"])
        db.run(until=5)
        assert db.nodes["A"].store.read("y") == 0  # stale replica
        db.partitions.heal_now()
        # ...and read immediately after the heal: the remote lock grant
        # carries y=10 even if A's replica hasn't installed it yet.
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.quiesce()
        assert tracker.result == 10
        assert db.global_serializability().ok

    def test_unreachable_lock_site_times_out(self):
        db = two_agent_db(
            ReadLocksStrategy(lock_timeout=20.0, retry_interval=2.0)
        )
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.run(until=30)
        assert tracker.status is RequestStatus.TIMED_OUT
        assert db.recorder.rejected  # counted as availability loss

    def test_own_fragment_updates_stay_available_in_partition(self):
        db = two_agent_db(ReadLocksStrategy(lock_timeout=20.0))
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        tracker = db.submit_update(
            "ag1",
            scripted_body([("r", "x"), ("w", "x", 5)]),
            reads=["x"],
            writes=["x"],
        )
        db.run(until=30)
        assert tracker.succeeded  # no remote locks needed

    def test_remote_lock_blocks_agent_writes_until_release(self):
        db = two_agent_db(ReadLocksStrategy())
        db.finalize()
        # Acquire the remote lock but park the transaction by holding
        # its local execution: easier to observe via the lock table.
        strategy = db.strategy
        scheduler_b = db.nodes["B"].scheduler
        assert scheduler_b.try_lock_external("rl:test", ["y"])
        blocked = db.submit_update("ag2", write_y(1), writes=["y"])
        db.quiesce()
        assert blocked.status is RequestStatus.PENDING
        scheduler_b.release_external("rl:test")
        db.quiesce()
        assert blocked.succeeded

    def test_shared_squatter_does_not_block_remote_readers(self):
        # Another reader's S lock is compatible: the grant is immediate.
        db = two_agent_db(
            ReadLocksStrategy(lock_timeout=50.0, retry_interval=2.0)
        )
        db.finalize()
        scheduler_b = db.nodes["B"].scheduler
        assert scheduler_b.try_lock_external("rl:squatter", ["y"])
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.quiesce()
        assert tracker.succeeded

    def test_busy_lock_site_retries_then_succeeds(self):
        # A slow local writer at B holds X on y; the remote request
        # bounces (all-or-nothing, no queuing) and retries until free.
        db = two_agent_db(
            ReadLocksStrategy(lock_timeout=80.0, retry_interval=2.0)
        )
        db.finalize()
        db.nodes["B"].scheduler.action_delay = 15.0

        def slow_writer(_ctx):
            yield Write("y", 1)
            yield Read("y")

        db.submit_update("ag2", slow_writer, writes=["y"])
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.run(until=10)
        assert tracker.status is RequestStatus.PENDING  # bouncing
        db.quiesce()
        assert tracker.succeeded
        assert tracker.result == 1  # saw the writer's committed value

    def test_global_serializability_under_partition_traffic(self):
        db = two_agent_db(
            ReadLocksStrategy(lock_timeout=30.0, retry_interval=2.0)
        )
        db.finalize()
        for i in range(3):
            db.sim.schedule_at(
                i * 10,
                lambda i=i: db.submit_update(
                    "ag2", write_y(i), writes=["y"]
                ),
            )
            db.sim.schedule_at(
                i * 10 + 5,
                lambda i=i: db.submit_update(
                    "ag1", read_y_write_x(i), reads=["y"], writes=["x"]
                ),
            )
        db.sim.schedule_at(
            12, lambda: db.partitions.partition_now([["A"], ["B"]])
        )
        db.sim.schedule_at(40, db.partitions.heal_now)
        db.quiesce()
        assert db.global_serializability().ok
        assert db.mutual_consistency().consistent


class TestAcyclicStrategy:
    def test_acyclic_design_validates(self):
        db = two_agent_db(AcyclicReadsStrategy())
        db.finalize()  # no raise: F1 -> F2 is a tree

    def test_cyclic_design_rejected(self):
        db = two_agent_db(AcyclicReadsStrategy())
        db.declare_reads("F2", fragments=["F1"])  # antiparallel pair
        with pytest.raises(DesignError):
            db.finalize()

    def test_undeclared_update_read_vetoed_at_commit(self):
        db = two_agent_db(AcyclicReadsStrategy(), declare=False)
        db.finalize()
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=[], writes=["x"]
        )
        db.quiesce()
        assert tracker.status is RequestStatus.ABORTED
        assert "read-access graph" in tracker.reason
        assert db.nodes["A"].store.read("x") == 0

    def test_declared_reads_execute_locally_without_sync(self):
        db = two_agent_db(AcyclicReadsStrategy())
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        tracker = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        db.run(until=5)
        assert tracker.succeeded  # fully available during the partition

    def test_readonly_violations_allowed_by_default(self):
        strategy = AcyclicReadsStrategy()
        db = two_agent_db(strategy, declare=False)
        db.finalize()
        tracker = db.submit_readonly(
            "ag1", scripted_body([("r", "y")]), reads=["y"]
        )
        db.quiesce()
        assert tracker.succeeded
        assert strategy.readonly_violations_observed == 1

    def test_readonly_violations_can_be_forbidden(self):
        db = two_agent_db(
            AcyclicReadsStrategy(allow_readonly_violations=False),
            declare=False,
        )
        db.finalize()
        tracker = db.submit_readonly(
            "ag1", scripted_body([("r", "y")]), reads=["y"]
        )
        db.quiesce()
        assert tracker.status is RequestStatus.ABORTED


class TestUnrestrictedStrategy:
    def test_everything_local_and_available(self):
        db = two_agent_db(UnrestrictedReadsStrategy(), declare=False)
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        t1 = db.submit_update(
            "ag1", read_y_write_x(1), reads=["y"], writes=["x"]
        )
        t2 = db.submit_update("ag2", write_y(5), writes=["y"])
        db.run(until=5)
        assert t1.succeeded
        assert t2.succeeded

    def test_stale_reads_possible_but_fragmentwise_holds(self):
        db = two_agent_db(UnrestrictedReadsStrategy(), declare=False)
        db.finalize()
        db.partitions.partition_now([["A"], ["B"]])
        db.submit_update("ag2", write_y(5), writes=["y"])
        t = db.submit_update(
            "ag1", read_y_write_x(0), reads=["y"], writes=["x"]
        )
        db.run(until=5)
        assert t.result == 0  # stale: y=5 not yet visible at A
        db.partitions.heal_now()
        db.quiesce()
        assert db.fragmentwise_serializability().ok
        assert db.mutual_consistency().consistent
