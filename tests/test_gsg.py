"""Tests for serialization graphs and the correctness properties.

Includes the deterministic reproduction of the paper's Section 4.3
counterexample (Figures 4.3.1 / 4.3.2): a read-access graph that is
acyclic but not *elementarily* acyclic admits a cyclic global
serialization graph while fragmentwise serializability and mutual
consistency survive.
"""

from repro import FragmentedDatabase, Topology, scripted_body
from repro.core.gsg import (
    global_serialization_graph,
    is_globally_serializable,
    local_serialization_graph,
    transaction_type,
)
from repro.core.properties import (
    check_fragmentwise_serializability,
    check_global_serializability,
    check_mutual_consistency,
    check_property1,
    check_property2,
)


def three_fragment_db(action_delay=1.5):
    topo = Topology.line(["N1", "N2", "N3"], latency=1.0)
    db = FragmentedDatabase(
        ["N1", "N2", "N3"], topology=topo, action_delay=action_delay
    )
    for i, node in [(1, "N1"), (2, "N2"), (3, "N3")]:
        db.add_agent(f"A{i}", home_node=node)
        db.add_fragment(f"F{i}", agent=f"A{i}", objects=["abc"[i - 1]])
    db.load({"a": 0, "b": 0, "c": 0})
    db.finalize()
    return db


def run_figure_43_schedule(db):
    """The exact interleaving of Section 4.3's counterexample."""
    db.nodes["N1"].scheduler.action_delay = 4.0
    db.sim.schedule_at(
        0,
        lambda: db.submit_update(
            "A3",
            scripted_body([("r", "c"), ("w", "c", 1)]),
            writes=["c"],
            txn_id="T3",
        ),
    )
    db.sim.schedule_at(
        4.5,
        lambda: db.submit_update(
            "A2",
            scripted_body([("r", "c"), ("w", "b", 1)]),
            writes=["b"],
            txn_id="T2",
        ),
    )
    db.sim.schedule_at(
        4.6,
        lambda: db.submit_update(
            "A1",
            scripted_body([("r", "c"), ("r", "b"), ("w", "a", 1)]),
            writes=["a"],
            txn_id="T1",
        ),
    )
    db.quiesce()


class TestFigure43Counterexample:
    def test_gsg_cycle_reproduced(self):
        db = three_fragment_db()
        run_figure_43_schedule(db)
        ok, cycle = is_globally_serializable(db.recorder)
        assert not ok
        assert set(cycle) == {"T1", "T2", "T3"}

    def test_exact_edges_of_figure_432(self):
        db = three_fragment_db()
        run_figure_43_schedule(db)
        graph = global_serialization_graph(db.recorder)
        assert graph.has_edge("T2", "T1")  # T2's w(b) installed before r(b)
        assert graph.has_edge("T1", "T3")  # T1 read c before T3's install
        assert graph.has_edge("T3", "T2")  # T3's w(c) installed before r(c)

    def test_fragmentwise_serializability_survives(self):
        db = three_fragment_db()
        run_figure_43_schedule(db)
        report = check_fragmentwise_serializability(db.recorder)
        assert report.ok

    def test_mutual_consistency_survives(self):
        db = three_fragment_db()
        run_figure_43_schedule(db)
        assert check_mutual_consistency(db.nodes.values()).consistent

    def test_rag_is_not_elementarily_acyclic(self):
        # The counterexample's read pattern: F1 reads F2,F3; F2 reads F3.
        db = three_fragment_db()
        db.rag.add_read_edge("F1", "F2")
        db.rag.add_read_edge("F1", "F3")
        db.rag.add_read_edge("F2", "F3")
        assert not db.rag.is_elementarily_acyclic()


class TestSerialSchedulesAreClean:
    def test_sequential_updates_serializable(self):
        db = three_fragment_db(action_delay=0.0)
        for i, (agent, obj) in enumerate(
            [("A1", "a"), ("A2", "b"), ("A3", "c")]
        ):
            db.submit_update(
                agent,
                scripted_body([("r", obj), ("w", obj, i)]),
                writes=[obj],
                txn_id=f"S{i}",
            )
            db.quiesce()
        assert check_global_serializability(db.recorder).ok
        assert check_property1(db.recorder).ok
        assert check_property2(db.recorder).ok


class TestLocalSerializationGraph:
    def test_contains_local_and_readable_nonlocal(self):
        db = three_fragment_db(action_delay=0.0)
        db.rag.add_read_edge("F1", "F3")
        db.submit_update(
            "A3",
            scripted_body([("w", "c", 5)]),
            writes=["c"],
            txn_id="T3",
        )
        db.quiesce()
        db.submit_update(
            "A1",
            scripted_body([("r", "c"), ("w", "a", 1)]),
            writes=["a"],
            txn_id="T1",
        )
        db.quiesce()
        graph = local_serialization_graph(
            db.recorder, db.rag, "F1", "N1", db.agent_fragments
        )
        assert graph.has_node("T1")
        assert graph.has_node("T3")
        assert graph.has_edge("T3", "T1")  # T1 read T3's version
        assert graph.is_acyclic()

    def test_excludes_unreadable_fragments(self):
        db = three_fragment_db(action_delay=0.0)
        db.rag.add_read_edge("F1", "F3")
        db.submit_update(
            "A2",
            scripted_body([("w", "b", 5)]),
            writes=["b"],
            txn_id="T2",
        )
        db.quiesce()
        graph = local_serialization_graph(
            db.recorder, db.rag, "F1", "N1", db.agent_fragments
        )
        assert not graph.has_node("T2")  # F2 not readable from F1

    def test_transaction_type(self):
        db = three_fragment_db(action_delay=0.0)
        db.submit_update(
            "A1", scripted_body([("w", "a", 1)]), writes=["a"], txn_id="U1"
        )
        db.submit_readonly(
            "A2", scripted_body([("r", "b")]), reads=["b"], txn_id="R1"
        )
        db.quiesce()
        agent_fragments = db.agent_fragments
        update = db.recorder.transaction("U1")
        readonly = db.recorder.transaction("R1")
        assert transaction_type(update, agent_fragments) == "F1"
        assert transaction_type(readonly, agent_fragments) == "F2"


class TestPropertyCheckers:
    def test_property2_catches_torn_read(self):
        """Ablation: split (non-atomic) installs break Property 2."""
        db = FragmentedDatabase(["A", "B"], action_delay=0.5)
        db.add_agent("ag", home_node="A")
        db.add_agent("reader", home_node="B")
        db.add_fragment("F", agent="ag", objects=["p", "q"])
        db.add_fragment("RO", agent="reader", objects=["dummy"])
        db.load({"p": 0, "q": 0, "dummy": 0})
        db.finalize()
        db.nodes["B"].atomic_installs = False  # the ablation switch

        def write_pair(_ctx):
            from repro.cc.ops import Write

            yield Write("p", 1)
            yield Write("q", 1)

        db.submit_update("ag", write_pair, writes=["p", "q"], txn_id="W")
        # A reader at B positioned to observe between the split installs.
        for delay in [x * 0.4 for x in range(1, 20)]:
            db.sim.schedule_at(
                delay,
                lambda d=delay: db.submit_readonly(
                    "reader",
                    scripted_body([("r", "p"), ("r", "q")]),
                    at="B",
                    reads=["p", "q"],
                    txn_id=f"R{d}",
                ),
            )
        db.quiesce()
        report = check_property2(db.recorder)
        assert not report.ok
        assert any("partial effect" in v for v in report.violations)

    def test_property2_holds_with_atomic_installs(self):
        db = FragmentedDatabase(["A", "B"], action_delay=0.5)
        db.add_agent("ag", home_node="A")
        db.add_agent("reader", home_node="B")
        db.add_fragment("F", agent="ag", objects=["p", "q"])
        db.add_fragment("RO", agent="reader", objects=["dummy"])
        db.load({"p": 0, "q": 0, "dummy": 0})
        db.finalize()

        def write_pair(_ctx):
            from repro.cc.ops import Write

            yield Write("p", 1)
            yield Write("q", 1)

        db.submit_update("ag", write_pair, writes=["p", "q"], txn_id="W")
        for delay in [x * 0.4 for x in range(1, 20)]:
            db.sim.schedule_at(
                delay,
                lambda d=delay: db.submit_readonly(
                    "reader",
                    scripted_body([("r", "p"), ("r", "q")]),
                    at="B",
                    reads=["p", "q"],
                    txn_id=f"R{d}",
                ),
            )
        db.quiesce()
        assert check_property2(db.recorder).ok

    def test_property1_catches_duplicate_stream_positions(self):
        """The "none" movement protocol mints colliding sequence numbers."""
        from repro.core.movement import InstantMoveProtocol
        from repro.cc.ops import Write as W

        db = FragmentedDatabase(["X", "Y"], movement=InstantMoveProtocol())
        db.add_agent("ag", home_node="X")
        db.add_fragment("F", agent="ag", objects=["v"])
        db.load({"v": 0})
        db.finalize()

        def setv(value):
            def body(_ctx):
                yield W("v", value)

            return body

        db.partitions.partition_now([["X"], ["Y"]])
        db.sim.schedule_at(
            1, lambda: db.submit_update("ag", setv(1), writes=["v"], txn_id="T1")
        )
        db.sim.schedule_at(5, lambda: db.move_agent("ag", "Y"))
        db.sim.schedule_at(
            10,
            lambda: db.submit_update("ag", setv(2), writes=["v"], txn_id="T2"),
        )
        db.sim.schedule_at(20, db.partitions.heal_now)
        db.quiesce()
        report = check_property1(db.recorder)
        assert not report.ok
        assert any("share stream position" in v for v in report.violations)

    def test_mutual_consistency_report_details(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        # Tamper with one replica directly.
        from repro.storage.values import Version

        db.nodes["B"].store.install("x", Version(99, "rogue", 1, 1.0))
        report = check_mutual_consistency(db.nodes.values())
        assert not report.consistent
        assert report.diffs[("A", "B")] == ["x"]
        assert "DIVERGED" in str(report)

    def test_single_node_trivially_consistent(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        assert check_mutual_consistency(db.nodes.values()).consistent
