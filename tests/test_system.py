"""End-to-end tests of the fragments-and-agents system."""

import pytest

from repro import (
    FragmentedDatabase,
    InitiationError,
    RequestStatus,
    Topology,
    scripted_body,
)
from repro.cc import Read, Write
from repro.errors import DesignError


def simple_db(nodes=("A", "B"), **kwargs):
    db = FragmentedDatabase(list(nodes), **kwargs)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x", "y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    return db


def write_body(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


class TestBasicFlow:
    def test_update_propagates_to_all_replicas(self):
        db = simple_db(("A", "B", "C"))
        tracker = db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.quiesce()
        assert tracker.succeeded
        for node in db.nodes.values():
            assert node.store.read("x") == 7

    def test_latency_respected(self):
        db = simple_db(("A", "B"))
        db.submit_update("ag", write_body("x", 7), writes=["x"])
        db.run(until=0.5)
        assert db.nodes["A"].store.read("x") == 7  # origin immediate
        assert db.nodes["B"].store.read("x") == 0  # still in flight
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 7

    def test_read_only_transaction(self):
        db = simple_db()
        db.submit_update("ag", write_body("x", 5), writes=["x"])
        db.quiesce()
        results = []
        tracker = db.submit_readonly(
            "ag",
            scripted_body([("r", "x")], collect=results),
            at="B",
            reads=["x"],
        )
        db.quiesce()
        assert tracker.succeeded
        assert results == [("x", 5)]

    def test_result_and_latency_on_tracker(self):
        db = simple_db()

        def body(_ctx):
            yield Write("x", 1)
            return "the-result"

        tracker = db.submit_update("ag", body, writes=["x"])
        db.quiesce()
        assert tracker.result == "the-result"
        assert tracker.latency == 0.0

    def test_trackers_collected(self):
        db = simple_db()
        db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.submit_update("ag", write_body("y", 2), writes=["y"])
        db.quiesce()
        stats = db.availability_stats()
        assert stats.submitted == 2
        assert stats.committed == 2
        assert stats.availability == 1.0


class TestInitiationRequirement:
    def test_write_outside_fragment_aborts(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("ag1", home_node="A")
        db.add_agent("ag2", home_node="B")
        db.add_fragment("F1", agent="ag1", objects=["x"])
        db.add_fragment("F2", agent="ag2", objects=["z"])
        db.load({"x": 0, "z": 0})
        db.finalize()
        # Declared writes say F1, but the body writes z (F2).
        tracker = db.submit_update("ag1", write_body("z", 1), writes=["x"])
        db.quiesce()
        assert tracker.status is RequestStatus.ABORTED
        assert "initiation requirement" in tracker.reason
        assert db.nodes["A"].store.read("z") == 0

    def test_multi_fragment_write_declaration_rejected(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F1", agent="ag", objects=["x"])
        db.add_fragment("F2", agent="ag", objects=["z"])
        db.load({"x": 0, "z": 0})
        with pytest.raises(InitiationError):
            db.submit_update("ag", write_body("x", 1), writes=["x", "z"])

    def test_agent_without_fragment_control_rejected(self):
        db = FragmentedDatabase(["A", "B"])
        db.add_agent("owner", home_node="A")
        db.add_agent("intruder", home_node="B")
        db.add_fragment("F", agent="owner", objects=["x"])
        db.load({"x": 0})
        with pytest.raises(InitiationError):
            db.submit_update("intruder", write_body("x", 1), writes=["x"])

    def test_ambiguous_fragment_needs_declared_writes(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F1", agent="ag", objects=["x"])
        db.add_fragment("F2", agent="ag", objects=["z"])
        db.load({"x": 0, "z": 0})
        with pytest.raises(InitiationError):
            db.submit_update("ag", write_body("x", 1))  # no writes declared

    def test_token_in_transit_rejects(self):
        from repro.core.movement import InstantMoveProtocol

        db = FragmentedDatabase(
            ["A", "B"], movement=InstantMoveProtocol()
        )
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()
        db.move_agent("ag", "B", transport_delay=10.0)
        tracker = db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.quiesce()
        assert tracker.status is RequestStatus.REJECTED
        assert "transit" in tracker.reason


class TestPartitionBehaviour:
    def test_updates_during_partition_reach_everyone_after_heal(self):
        db = simple_db(("A", "B", "C"))
        db.partitions.partition_now([["A"], ["B", "C"]])
        tracker = db.submit_update("ag", write_body("x", 42), writes=["x"])
        db.run(until=10)
        assert tracker.succeeded  # the agent's node stays available
        assert db.nodes["B"].store.read("x") == 0
        db.partitions.heal_now()
        db.quiesce()
        assert db.mutual_consistency().consistent
        assert db.nodes["C"].store.read("x") == 42

    def test_fifo_install_order_across_heal(self):
        db = simple_db(("A", "B"))
        db.partitions.partition_now([["A"], ["B"]])
        for value in (1, 2, 3):
            db.submit_update("ag", write_body("x", value), writes=["x"])
        db.run(until=10)
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["B"].store.read("x") == 3
        seqs = [
            r.stream_seq
            for r in db.recorder.installs_at("B")
            if r.fragment == "F"
        ]
        assert seqs == sorted(seqs)

    def test_convergence_time_bounded_by_latency(self):
        db = simple_db(("A", "B"))
        db.partitions.partition_now([["A"], ["B"]])
        db.submit_update("ag", write_body("x", 9), writes=["x"])
        db.run(until=100)
        db.partitions.heal_now()
        heal_time = db.sim.now
        db.quiesce()
        # One update, one hop: convergence within a couple of latencies.
        assert db.sim.now <= heal_time + 5


class TestValidation:
    def test_unknown_agent(self):
        db = simple_db()
        with pytest.raises(DesignError):
            db.submit_update("ghost", write_body("x", 1), writes=["x"])

    def test_unknown_node_for_agent(self):
        db = FragmentedDatabase(["A"])
        with pytest.raises(DesignError):
            db.add_agent("ag", home_node="Z")

    def test_duplicate_agent(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        with pytest.raises(DesignError):
            db.add_agent("ag", home_node="A")

    def test_fragment_requires_known_agent(self):
        db = FragmentedDatabase(["A"])
        with pytest.raises(DesignError):
            db.add_fragment("F", agent="ghost", objects=["x"])

    def test_load_rejects_unassigned_objects(self):
        db = FragmentedDatabase(["A"])
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        with pytest.raises(DesignError):
            db.load({"x": 0, "unassigned": 1})

    def test_install_hook_requires_known_fragment(self):
        db = simple_db()
        with pytest.raises(DesignError):
            db.on_install("NOPE", lambda node, quasi: None)

    def test_at_least_one_node(self):
        with pytest.raises(DesignError):
            FragmentedDatabase([])


class TestHooks:
    def test_install_hook_fires_everywhere(self):
        db = simple_db(("A", "B", "C"))
        fired = []
        db.on_install("F", lambda node, quasi: fired.append(node.name))
        db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.quiesce()
        assert sorted(fired) == ["A", "B", "C"]

    def test_hook_receives_quasi_transaction(self):
        db = simple_db()
        quasis = []
        db.on_install("F", lambda node, quasi: quasis.append(quasi))
        db.submit_update("ag", write_body("x", 5), writes=["x"], txn_id="TX")
        db.quiesce()
        assert all(q.source_txn == "TX" for q in quasis)
        assert all(q.objects == ["x"] for q in quasis)


class TestHistoryRecording:
    def test_commit_records_written(self):
        db = simple_db()
        db.submit_update("ag", write_body("x", 5), writes=["x"], txn_id="T1")
        db.quiesce()
        record = db.recorder.transaction("T1")
        assert record.fragment == "F"
        assert record.stream_seq == 0
        assert [w.obj for w in record.writes] == ["x"]

    def test_updates_of_fragment_in_stream_order(self):
        db = simple_db()
        for value in (1, 2, 3):
            db.submit_update("ag", write_body("x", value), writes=["x"])
        db.quiesce()
        updates = db.recorder.updates_of_fragment("F")
        assert [u.stream_seq for u in updates] == [0, 1, 2]

    def test_version_order_per_object(self):
        db = simple_db()
        for value in (1, 2):
            db.submit_update("ag", write_body("x", value), writes=["x"])
        db.quiesce()
        order = db.recorder.version_order()
        assert [vno for vno, _txn in order["x"]] == [1, 2]


class TestCustomTopology:
    def test_line_topology_propagates_through_middle(self):
        topo = Topology.line(["A", "B", "C"], latency=1.0)
        db = FragmentedDatabase(["A", "B", "C"], topology=topo)
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()
        db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 1

    def test_middle_node_failure_heals(self):
        topo = Topology.line(["A", "B", "C"], latency=1.0)
        db = FragmentedDatabase(["A", "B", "C"], topology=topo)
        db.add_agent("ag", home_node="A")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()
        topo.set_link_up("B", "C", False)
        db.submit_update("ag", write_body("x", 1), writes=["x"])
        db.run(until=20)
        assert db.nodes["C"].store.read("x") == 0
        topo.set_link_up("B", "C", True)
        db.network.topology_changed()
        db.quiesce()
        assert db.nodes["C"].store.read("x") == 1
