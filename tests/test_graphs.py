"""Unit and property tests for the digraph utilities."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.graphs import Digraph, digraph_from_edges


class TestConstruction:
    def test_empty_graph(self):
        graph = Digraph()
        assert len(graph) == 0
        assert graph.nodes == []
        assert graph.edges == []

    def test_add_node_idempotent(self):
        graph = Digraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.nodes == ["a"]

    def test_add_edge_creates_nodes(self):
        graph = Digraph()
        graph.add_edge("a", "b")
        assert set(graph.nodes) == {"a", "b"}
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_parallel_edges_collapse(self):
        graph = Digraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        assert graph.edges == [("a", "b")]

    def test_successors_predecessors(self):
        graph = digraph_from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("c") == ["a", "b"]

    def test_contains_and_iter(self):
        graph = digraph_from_edges([("a", "b")])
        assert "a" in graph
        assert "z" not in graph
        assert list(graph) == ["a", "b"]


class TestCycles:
    def test_acyclic_chain(self):
        graph = digraph_from_edges([("a", "b"), ("b", "c")])
        assert graph.is_acyclic()
        assert graph.find_cycle() is None

    def test_simple_cycle(self):
        graph = digraph_from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        cycle = graph.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # Every consecutive pair is an edge.
        for u, v in zip(cycle, cycle[1:]):
            assert graph.has_edge(u, v)

    def test_self_loop_is_cycle(self):
        graph = digraph_from_edges([("a", "a")])
        cycle = graph.find_cycle()
        assert cycle == ["a", "a"]

    def test_two_cycle(self):
        graph = digraph_from_edges([("a", "b"), ("b", "a")])
        assert not graph.is_acyclic()

    def test_cycle_in_second_component(self):
        graph = digraph_from_edges(
            [("a", "b"), ("x", "y"), ("y", "z"), ("z", "x")]
        )
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) <= {"x", "y", "z"}

    def test_diamond_is_acyclic(self):
        graph = digraph_from_edges(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert graph.is_acyclic()

    def test_deep_chain_no_recursion_error(self):
        edges = [(i, i + 1) for i in range(50_000)]
        graph = digraph_from_edges(edges)
        assert graph.is_acyclic()

    def test_deep_cycle_found(self):
        n = 20_000
        edges = [(i, (i + 1) % n) for i in range(n)]
        graph = digraph_from_edges(edges)
        assert graph.find_cycle() is not None


class TestTopologicalOrder:
    def test_respects_edges(self):
        graph = digraph_from_edges(
            [("a", "b"), ("b", "c"), ("a", "c"), ("d", "c")]
        )
        order = graph.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for u, v in graph.edges:
            assert position[u] < position[v]

    def test_cyclic_raises(self):
        graph = digraph_from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_includes_isolated_nodes(self):
        graph = Digraph()
        graph.add_node("solo")
        graph.add_edge("a", "b")
        assert set(graph.topological_order()) == {"solo", "a", "b"}


class TestElementaryAcyclicity:
    """Section 4.2's definition: the undirected shadow must be a forest."""

    def test_tree_is_elementarily_acyclic(self):
        graph = digraph_from_edges([("r", "a"), ("r", "b"), ("a", "c")])
        assert graph.is_elementarily_acyclic()
        assert graph.undirected_cycle() is None

    def test_directed_acyclic_but_elementarily_cyclic(self):
        # Figure 4.3.1: F1->F2, F1->F3, F2->F3 is a DAG but its shadow
        # is a triangle.
        graph = digraph_from_edges(
            [("F1", "F2"), ("F1", "F3"), ("F2", "F3")]
        )
        assert graph.is_acyclic()
        assert not graph.is_elementarily_acyclic()
        cycle = graph.undirected_cycle()
        assert cycle is not None
        assert set(cycle) <= {"F1", "F2", "F3"}

    def test_antiparallel_pair_is_cyclic(self):
        # Two agents reading each other's fragments admit the classic
        # two-transaction non-serializable interleaving; the pair must
        # count as a cycle.
        graph = digraph_from_edges([("F1", "F2"), ("F2", "F1")])
        assert not graph.is_elementarily_acyclic()
        assert graph.undirected_cycle() is not None

    def test_self_loop_is_elementarily_cyclic(self):
        graph = digraph_from_edges([("a", "a")])
        assert not graph.is_elementarily_acyclic()

    def test_star_is_elementarily_acyclic(self):
        # Figure 4.2.1: the central office reads every warehouse.
        edges = [("C", f"W{i}") for i in range(10)]
        graph = digraph_from_edges(edges)
        assert graph.is_elementarily_acyclic()

    def test_bipartite_complete_2x2_is_cyclic(self):
        # Figure 4.3.3: flights x customers.
        edges = [("F1", "C1"), ("F1", "C2"), ("F2", "C1"), ("F2", "C2")]
        graph = digraph_from_edges(edges)
        assert not graph.is_elementarily_acyclic()

    def test_forest_of_two_trees(self):
        graph = digraph_from_edges([("a", "b"), ("c", "d"), ("c", "e")])
        assert graph.is_elementarily_acyclic()


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n),
                st.integers(min_value=0, max_value=n),
            ),
            max_size=30,
        )
    )
    return edges


class TestAgainstNetworkx:
    """Cross-check our algorithms against networkx on random graphs."""

    @given(edge_lists())
    def test_cycle_detection_matches(self, edges):
        ours = digraph_from_edges(edges)
        theirs = nx.DiGraph(edges)
        assert ours.is_acyclic() == nx.is_directed_acyclic_graph(theirs)

    @given(edge_lists())
    def test_topological_order_valid_when_acyclic(self, edges):
        ours = digraph_from_edges(edges)
        if not ours.is_acyclic():
            return
        order = ours.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for u, v in ours.edges:
            assert position[u] < position[v]

    @given(edge_lists())
    def test_elementary_acyclicity_matches_multigraph_forest(self, edges):
        ours = digraph_from_edges(edges)
        shadow = nx.MultiGraph()
        shadow.add_nodes_from(ours.nodes)
        seen = set()
        for u, v in ours.edges:
            if (u, v) in seen:
                continue
            seen.add((u, v))
            shadow.add_edge(u, v)
        expected = nx.is_forest(shadow) if len(shadow) else True
        assert ours.is_elementarily_acyclic() == expected

    @given(edge_lists())
    def test_undirected_cycle_reported_iff_cyclic(self, edges):
        ours = digraph_from_edges(edges)
        cycle = ours.undirected_cycle()
        if ours.is_elementarily_acyclic():
            assert cycle is None
        else:
            assert cycle is not None
