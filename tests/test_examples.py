"""The shipped examples must keep running and telling the truth."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def _run(name):
    script = next(p for p in EXAMPLES if p.name == name)
    return subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=120,
    ).stdout


class TestExampleClaims:
    def test_quickstart_reports_consistency(self):
        out = _run("quickstart.py")
        assert "mutually consistent" in out
        assert "availability: 2/2" in out

    def test_banking_partition_tells_the_section2_story(self):
        out = _run("banking_partition.py")
        assert out.count("granted") >= 2
        assert "fine $25" in out or "fine  $25" in out or "LETTER" in out
        assert "['A']" in out  # centralized decisions

    def test_warehouse_keeps_serializability(self):
        out = _run("warehouse_inventory.py")
        assert "elementarily acyclic: True" in out
        assert "stock-conservation violations: 0" in out

    def test_airline_never_overbooks(self):
        out = _run("airline_reservations.py")
        assert "violations: 0" in out

    def test_moving_agents_shows_all_five_protocols(self):
        out = _run("moving_agents.py")
        for protocol in ("none", "majority", "with-data", "with-seqno",
                        "corrective"):
            assert protocol in out

    def test_combined_strategies_mixes_tiers(self):
        out = _run("combined_strategies.py")
        assert "timed_out" in out  # the read-locks tier pays
        assert "intake never stops" in out
