"""Tests for multi-fragment transaction groups (§3.2 footnote)."""

import pytest

from repro import FragmentedDatabase, RequestStatus, TransactionSpec
from repro.cc.ops import Read, Write
from repro.core.groups import MultiFragmentCoordinator, submit_group
from repro.errors import DesignError


def make_db(nodes=("A", "B", "C")):
    db = FragmentedDatabase(list(nodes))
    db.add_agent("a1", home_node=nodes[0])
    db.add_agent("a2", home_node=nodes[1])
    db.add_fragment("F1", agent="a1", objects=["x"])
    db.add_fragment("F2", agent="a2", objects=["y"])
    db.load({"x": 0, "y": 0})
    db.finalize()
    return db


def write_spec(db, agent, obj, value, txn_id=None):
    def body(_ctx):
        yield Write(obj, value)

    return TransactionSpec(
        txn_id=txn_id or db.next_txn_id("G"),
        agent=agent,
        body=body,
        update=True,
        writes=[obj],
    )


def failing_spec(db, agent, obj, txn_id=None):
    def body(_ctx):
        from repro.errors import TransactionAborted

        yield Write(obj, 999)
        raise TransactionAborted("x", "business rule failed")

    return TransactionSpec(
        txn_id=txn_id or db.next_txn_id("G"),
        agent=agent,
        body=body,
        update=True,
        writes=[obj],
    )


class TestSubmitGroup:
    def test_independent_members_all_commit(self):
        db = make_db()
        group = submit_group(
            db,
            [write_spec(db, "a1", "x", 1), write_spec(db, "a2", "y", 2)],
        )
        db.quiesce()
        assert group.all_succeeded
        assert db.nodes["C"].store.read("x") == 1
        assert db.nodes["C"].store.read("y") == 2

    def test_partial_failure_reported_not_rolled_back(self):
        db = make_db()
        group = submit_group(
            db,
            [write_spec(db, "a1", "x", 1), failing_spec(db, "a2", "y")],
        )
        db.quiesce()
        assert not group.all_succeeded
        assert group.finished
        # The decomposition offers no atomicity: x landed, y did not.
        assert db.nodes["A"].store.read("x") == 1
        assert db.nodes["B"].store.read("y") == 0

    def test_on_done_fires_once_when_finished(self):
        db = make_db()
        calls = []
        submit_group(
            db,
            [write_spec(db, "a1", "x", 1), write_spec(db, "a2", "y", 2)],
            on_done=lambda g: calls.append(g.all_succeeded),
        )
        db.quiesce()
        assert calls == [True]


class TestAtomicGroup:
    def test_commit_all(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        group = coordinator.submit_atomic(
            [write_spec(db, "a1", "x", 7), write_spec(db, "a2", "y", 8)]
        )
        db.quiesce()
        assert group.decided == "committed"
        assert group.all_succeeded
        for node in db.nodes.values():
            assert node.store.read("x") == 7
            assert node.store.read("y") == 8
        assert db.fragmentwise_serializability().ok
        assert db.mutual_consistency().consistent

    def test_one_member_fails_all_roll_back(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        group = coordinator.submit_atomic(
            [write_spec(db, "a1", "x", 7), failing_spec(db, "a2", "y")]
        )
        db.quiesce()
        assert group.decided == "aborted"
        assert not group.all_succeeded
        for node in db.nodes.values():
            assert node.store.read("x") == 0  # rolled back
            assert node.store.read("y") == 0

    def test_prepared_member_holds_locks_until_decision(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        # Put a2's home across a partition: its prepare happens locally
        # (submission is at its own node), but the coordinator at A
        # cannot deliver the commit decision until the heal.
        db.partitions.partition_now([["A", "C"], ["B"]])
        group = coordinator.submit_atomic(
            [write_spec(db, "a1", "x", 1), write_spec(db, "a2", "y", 2)],
            coordinator_node="A",
            timeout=500.0,
        )
        db.run(until=20)
        assert group.decided == "committed"  # both prepared locally
        # B hasn't seen the decision: y is still prepared, locked, and
        # unapplied there.
        assert db.nodes["B"].store.read("y") == 0
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["B"].store.read("y") == 2
        assert db.mutual_consistency().consistent

    def test_timeout_aborts_everything(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        # a2's member is submitted but rejected: its token is in transit.
        from repro.core.movement import InstantMoveProtocol

        db2 = FragmentedDatabase(["A", "B"], movement=InstantMoveProtocol())
        db2.add_agent("a1", home_node="A")
        db2.add_agent("a2", home_node="B")
        db2.add_fragment("F1", agent="a1", objects=["x"])
        db2.add_fragment("F2", agent="a2", objects=["y"])
        db2.load({"x": 0, "y": 0})
        db2.finalize()
        coordinator2 = MultiFragmentCoordinator(db2)
        db2.move_agent("a2", "A", transport_delay=50.0)
        group = coordinator2.submit_atomic(
            [write_spec(db2, "a1", "x", 1), write_spec(db2, "a2", "y", 2)],
            timeout=10.0,
        )
        db2.quiesce()
        assert group.decided == "aborted"
        assert db2.nodes["A"].store.read("x") == 0

    def test_same_fragment_twice_rejected(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        with pytest.raises(DesignError):
            coordinator.submit_atomic(
                [write_spec(db, "a1", "x", 1), write_spec(db, "a1", "x", 2)]
            )

    def test_empty_group_rejected(self):
        db = make_db()
        coordinator = MultiFragmentCoordinator(db)
        with pytest.raises(DesignError):
            coordinator.submit_atomic([])

    def test_prepared_state_blocks_local_readers(self):
        db = make_db()
        db.nodes["B"].scheduler.action_delay = 0.0
        coordinator = MultiFragmentCoordinator(db)
        db.partitions.partition_now([["A", "C"], ["B"]])
        coordinator.submit_atomic(
            [write_spec(db, "a1", "x", 1), write_spec(db, "a2", "y", 2)],
            coordinator_node="A",
            timeout=500.0,
        )
        db.run(until=5)
        # y is X-locked by the prepared member at B: a local reader waits.
        seen = []

        def reader(_ctx):
            seen.append((yield Read("y")))

        db.submit_readonly("a2", reader, at="B", reads=["y"])
        db.run(until=10)
        assert seen == []  # blocked behind the prepared lock
        db.partitions.heal_now()
        db.quiesce()
        assert seen == [2]  # released by the commit decision
