"""Tests for the Section 4.4 agent movement protocols.

The guarantee matrix under scripted moves across a partition:

=================  ====================  =========================
protocol           mutual consistency    fragmentwise serializability
=================  ====================  =========================
none               can break             can break
majority (4.4.1)   preserved             preserved (minority rejected)
with-data (4.4.2A) preserved             preserved
with-seqno (4.4.2B) preserved            preserved (waits)
corrective (4.4.3) preserved (eventual)  sacrificed
=================  ====================  =========================
"""

import pytest

from repro import (
    CorrectiveMoveProtocol,
    FixedAgentsProtocol,
    FragmentedDatabase,
    InstantMoveProtocol,
    MajorityCommitProtocol,
    MoveWithDataProtocol,
    MoveWithSeqnoProtocol,
    RequestStatus,
)
from repro.cc.ops import Write
from repro.errors import TokenError


def moving_db(protocol, nodes=("X", "Y", "Z")):
    db = FragmentedDatabase(list(nodes), movement=protocol)
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["v", "w"])
    db.load({"v": 0, "w": 0})
    db.finalize()
    return db


def setv(obj, value):
    def body(_ctx):
        yield Write(obj, value)

    return body


def missing_transaction_scenario(db, same_object=True):
    """T1 at X during a partition, move X->Y, T2 at Y, heal late.

    With ``same_object`` both transactions write ``v`` — the paper's
    missing-transaction hazard in its sharpest form.
    """
    results = {}
    db.sim.schedule_at(
        1, lambda: db.partitions.partition_now([["X"], ["Y", "Z"]])
    )
    db.sim.schedule_at(
        5,
        lambda: results.update(
            t1=db.submit_update("ag", setv("v", 111), writes=["v"], txn_id="T1")
        ),
    )
    db.sim.schedule_at(10, lambda: db.move_agent("ag", "Y", transport_delay=2))
    obj2 = "v" if same_object else "w"
    db.sim.schedule_at(
        25,
        lambda: results.update(
            t2=db.submit_update(
                "ag", setv(obj2, 222), writes=[obj2], txn_id="T2"
            )
        ),
    )
    db.sim.schedule_at(60, db.partitions.heal_now)
    db.quiesce()
    return results


class TestFixedAgents:
    def test_moves_disallowed(self):
        db = moving_db(FixedAgentsProtocol())
        with pytest.raises(TokenError):
            db.move_agent("ag", "Y")

    def test_ordered_admission_buffers_gaps(self):
        db = moving_db(FixedAgentsProtocol(), nodes=("X", "Y"))
        db.partitions.partition_now([["X"], ["Y"]])
        for i in range(3):
            db.submit_update("ag", setv("v", i), writes=["v"])
        db.run(until=10)
        db.partitions.heal_now()
        db.quiesce()
        assert db.nodes["Y"].store.read("v") == 2
        assert db.fragmentwise_serializability().ok


class TestNoProtection:
    def test_mutual_consistency_breaks_on_same_object(self):
        db = moving_db(InstantMoveProtocol())
        results = missing_transaction_scenario(db, same_object=True)
        assert results["t1"].succeeded
        assert results["t2"].succeeded
        # X installs T1 then late T2 -> 222; Y installed T2 then the
        # late orphan T1 blindly overwrites -> 111.  Replicas diverge.
        report = db.mutual_consistency()
        assert not report.consistent

    def test_fragmentwise_serializability_breaks(self):
        db = moving_db(InstantMoveProtocol())
        missing_transaction_scenario(db, same_object=True)
        assert not db.fragmentwise_serializability().ok

    def test_different_objects_converge_by_luck(self):
        # The hazard is real but scenario-dependent: disjoint writes
        # commute, so blind installation happens to converge.
        db = moving_db(InstantMoveProtocol())
        missing_transaction_scenario(db, same_object=False)
        assert db.mutual_consistency().consistent


class TestMoveWithData:
    def test_preserves_both_properties(self):
        db = moving_db(MoveWithDataProtocol())
        results = missing_transaction_scenario(db, same_object=True)
        assert results["t1"].succeeded
        assert results["t2"].succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        # The final value everywhere is the later transaction's.
        for node in db.nodes.values():
            assert node.store.read("v") == 222

    def test_new_home_reads_carried_data_immediately(self):
        db = moving_db(MoveWithDataProtocol())
        db.partitions.partition_now([["X"], ["Y", "Z"]])
        db.submit_update("ag", setv("v", 7), writes=["v"])
        db.run(until=5)
        assert db.nodes["Y"].store.read("v") == 0  # partition blocks it
        db.move_agent("ag", "Y", transport_delay=3)
        db.run(until=20)
        # The token carried the fragment: Y is current without the net.
        assert db.nodes["Y"].store.read("v") == 7
        db.partitions.heal_now()
        db.quiesce()
        assert db.mutual_consistency().consistent

    def test_carried_snapshot_metrics(self):
        protocol = MoveWithDataProtocol()
        db = moving_db(protocol)
        db.move_agent("ag", "Y", transport_delay=1)
        db.quiesce()
        assert protocol.snapshots_carried == 1
        assert protocol.objects_carried == 2  # v and w


class TestMoveWithSeqno:
    def test_preserves_both_properties(self):
        db = moving_db(MoveWithSeqnoProtocol())
        results = missing_transaction_scenario(db, same_object=True)
        assert results["t1"].succeeded
        assert results["t2"].succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_t2_waits_for_missing_t1(self):
        protocol = MoveWithSeqnoProtocol()
        db = moving_db(protocol)
        results = missing_transaction_scenario(db, same_object=True)
        # T2 could not run before T1 reached Y (after the heal at 60).
        assert results["t2"].finish_time > 60
        assert protocol.requests_queued == 1
        assert protocol.total_wait_time > 0

    def test_no_wait_when_already_caught_up(self):
        db = moving_db(MoveWithSeqnoProtocol())
        db.submit_update("ag", setv("v", 1), writes=["v"])
        db.quiesce()  # everyone has T1
        db.move_agent("ag", "Y", transport_delay=1)
        db.quiesce()
        tracker = db.submit_update("ag", setv("v", 2), writes=["v"])
        db.quiesce()
        assert tracker.succeeded
        assert db.mutual_consistency().consistent

    def test_wait_timeout_rejects(self):
        db = moving_db(MoveWithSeqnoProtocol(wait_timeout=10.0))
        results = missing_transaction_scenario(db, same_object=True)
        assert results["t2"].status is RequestStatus.TIMED_OUT


class TestMajorityCommit:
    def test_minority_update_rejected(self):
        db = moving_db(MajorityCommitProtocol())
        results = missing_transaction_scenario(db, same_object=True)
        # T1 ran at X while X was a 1-of-3 minority: rejected.
        assert results["t1"].status is RequestStatus.REJECTED
        assert results["t2"].succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok

    def test_majority_side_keeps_working(self):
        db = moving_db(MajorityCommitProtocol())
        db.partitions.partition_now([["X"], ["Y", "Z"]])
        db.move_agent("ag", "Y", transport_delay=1)
        db.run(until=30)
        tracker = db.submit_update("ag", setv("v", 5), writes=["v"])
        db.run(until=40)
        assert tracker.succeeded
        db.partitions.heal_now()
        db.quiesce()
        assert db.mutual_consistency().consistent

    def test_move_resyncs_missed_transactions(self):
        protocol = MajorityCommitProtocol()
        db = moving_db(protocol)
        db.submit_update("ag", setv("v", 1), writes=["v"], txn_id="T1")
        db.quiesce()
        # Y misses the next update: cut Y off, update, heal via move.
        db.partitions.partition_now([["X", "Z"], ["Y"]])
        db.submit_update("ag", setv("v", 2), writes=["v"], txn_id="T2")
        db.run(until=10)
        assert db.nodes["Y"].store.read("v") == 1
        db.partitions.heal_now()
        db.move_agent("ag", "Y", transport_delay=1)
        db.quiesce()
        tracker = db.submit_update("ag", setv("v", 3), writes=["v"], txn_id="T3")
        db.quiesce()
        assert tracker.succeeded
        assert db.mutual_consistency().consistent
        assert db.fragmentwise_serializability().ok
        assert db.nodes["Y"].store.read("v") == 3

    def test_prepare_ack_overhead_counted(self):
        protocol = MajorityCommitProtocol()
        db = moving_db(protocol)
        db.submit_update("ag", setv("v", 1), writes=["v"])
        db.quiesce()
        assert protocol.prepare_rounds == 1
        assert db.network.messages_by_kind["maj-prep"] == 2
        assert db.network.messages_by_kind["maj-ack"] == 2


class TestCorrectiveProtocol:
    def test_mutual_consistency_preserved_same_object(self):
        db = moving_db(CorrectiveMoveProtocol())
        results = missing_transaction_scenario(db, same_object=True)
        assert results["t1"].succeeded
        assert results["t2"].succeeded
        assert db.mutual_consistency().consistent
        # T1's write of v was overwritten by T2 (newer timestamp): the
        # orphan is stripped empty and dropped.
        for node in db.nodes.values():
            assert node.store.read("v") == 222

    def test_fragmentwise_sacrificed(self):
        db = moving_db(CorrectiveMoveProtocol())
        missing_transaction_scenario(db, same_object=True)
        assert not db.fragmentwise_serializability().ok

    def test_orphan_with_surviving_update_repackaged(self):
        protocol = CorrectiveMoveProtocol()
        db = moving_db(protocol)
        results = missing_transaction_scenario(db, same_object=False)
        # T1 wrote v, T2 wrote w: nothing overwrote v at Y, so the
        # orphan is repackaged into the new stream and applied.
        db.quiesce()
        assert protocol.orphans_handled >= 1
        assert protocol.repackaged_count >= 1
        assert db.mutual_consistency().consistent
        for node in db.nodes.values():
            assert node.store.read("v") == 111
            assert node.store.read("w") == 222

    def test_overwritten_orphan_dropped_empty(self):
        protocol = CorrectiveMoveProtocol()
        db = moving_db(protocol)
        missing_transaction_scenario(db, same_object=True)
        assert protocol.orphans_dropped_empty >= 1

    def test_corrective_hook_fires(self):
        protocol = CorrectiveMoveProtocol()
        db = moving_db(protocol)
        fired = []
        db.on_corrective(
            lambda node, quasi, kept: fired.append((quasi.source_txn, len(kept)))
        )
        missing_transaction_scenario(db, same_object=True)
        assert fired == [("T1", 0)]

    def test_m0_lets_stragglers_catch_up(self):
        protocol = CorrectiveMoveProtocol()
        db = moving_db(protocol)
        # Z misses two pre-move transactions entirely; the M0 broadcast
        # from the new home carries them.
        db.partitions.partition_now([["X", "Y"], ["Z"]])
        db.submit_update("ag", setv("v", 1), writes=["v"], txn_id="T1")
        db.submit_update("ag", setv("w", 2), writes=["w"], txn_id="T2")
        db.run(until=10)
        assert db.nodes["Z"].store.read("v") == 0
        db.partitions.heal_now()
        db.run(until=11)
        # Move immediately; Z may still be behind when M0 arrives.
        db.move_agent("ag", "Y", transport_delay=0.1)
        db.quiesce()
        assert db.nodes["Z"].store.read("v") == 1
        assert db.nodes["Z"].store.read("w") == 2
        assert db.mutual_consistency().consistent

    def test_epoch_bumped_per_move(self):
        protocol = CorrectiveMoveProtocol()
        db = moving_db(protocol)
        db.move_agent("ag", "Y", transport_delay=1)
        db.quiesce()
        db.move_agent("ag", "Z", transport_delay=1)
        db.quiesce()
        token = db.agents["ag"].token_for("F")
        assert token.payload["epoch"] == 2
        assert protocol.m0_broadcasts == 2
