"""Determinism of the event-wheel scheduler on real workloads.

This suite originally proved the wheel fired the *same* schedule as the
binary-heap core it replaced.  The heap (and its
``REPRO_SIM_SCHEDULER=heap`` escape hatch) has since been removed, so
the cross-core comparisons are dead; what still matters — and what
golden traces, the lineage auditor, and every seeded chaos result
depend on — is that the wheel's ``(time, scheduling-order)`` firing
order is a pure function of the schedule.  Each test therefore runs
the same seeded workload twice in fresh simulators and demands
bit-identical results: final-state hashes, event counts, message
counts, audit verdicts.
"""

import hashlib
from dataclasses import asdict

import pytest

from repro import (
    CorrectiveMoveProtocol,
    FragmentedDatabase,
    MoveWithSeqnoProtocol,
    PipelineConfig,
)
from repro.analysis.nemesis import NemesisConfig, run_nemesis
from repro.cc.ops import Read, Write
from repro.sim import SeededRng, Simulator


def state_hash(db):
    digest = hashlib.sha256()
    for name in sorted(db.nodes):
        store = db.nodes[name].store
        for obj in sorted(store.names):
            version = store.read_version(obj)
            digest.update(
                f"{name}|{obj}|{version.value!r}|{version.writer}|"
                f"{version.version_no}\n".encode()
            )
    return digest.hexdigest()


def twice(fn):
    """Run ``fn`` in two fresh interpretations and return both results."""
    return fn(), fn()


class TestMicroDeterminism:
    """Raw simulator: randomized schedules fire in the same order."""

    def test_random_schedule_same_firing_order(self):
        def run():
            sim = Simulator()
            rng = SeededRng(42)
            fired = []
            handles = []

            def make(tag):
                return lambda: fired.append((tag, sim.now))

            # Dense near-term traffic, far timers beyond the wheel
            # horizon, ties at shared instants, and cancellations.
            for i in range(500):
                delay = rng.exponential(3.0)
                if i % 7 == 0:
                    delay = float(int(delay))  # force exact ties
                if i % 11 == 0:
                    delay += 2000.0  # overflow-heap territory
                handles.append(sim.schedule(delay, make(i)))
            for i, handle in enumerate(handles):
                if i % 5 == 0:
                    handle.cancel()
            sim.run()
            return fired, sim.events_fired

        first, second = twice(run)
        assert first == second
        # Ties fired in scheduling order: stable sort of the tags at
        # each shared instant reproduces the observed order.
        fired, _ = first
        by_time = {}
        for tag, time in fired:
            by_time.setdefault(time, []).append(tag)
        for tags in by_time.values():
            assert tags == sorted(tags)

    def test_zero_delay_cascades_identical(self):
        def run():
            sim = Simulator()
            fired = []

            def cascade(depth):
                fired.append((depth, sim.now))
                if depth < 50:
                    sim.schedule(0.0, lambda: cascade(depth + 1))
                    sim.schedule(0.0, lambda: fired.append(("side", depth)))

            sim.schedule(1.0, lambda: cascade(0))
            sim.schedule(1.0, lambda: fired.append(("peer", sim.now)))
            sim.run()
            return fired

        first, second = twice(run)
        assert first == second

    def test_run_until_boundaries_identical(self):
        def run():
            sim = Simulator()
            fired = []
            for i in range(40):
                sim.schedule(
                    i * 0.75, lambda i=i: fired.append((i, sim.now))
                )
            # Stop mid-bucket, then mid-gap, then drain: the wheel must
            # restore leftovers losslessly at every pause point.
            sim.run(until=7.1)
            checkpoint_a = list(fired)
            sim.schedule(0.0, lambda: fired.append(("post-pause", sim.now)))
            sim.run(until=13.0)
            checkpoint_b = list(fired)
            sim.run()
            return checkpoint_a, checkpoint_b, fired, sim.events_fired

        first, second = twice(run)
        assert first == second

    def test_wheel_geometry_does_not_change_schedule(self):
        """Bucket width/count are perf knobs, not semantics: the same
        schedule fires identically under wildly different geometry."""

        def run(width, slots):
            sim = Simulator(wheel_width=width, wheel_slots=slots)
            rng = SeededRng(7)
            fired = []
            for i in range(300):
                sim.schedule(
                    rng.exponential(5.0),
                    lambda i=i: fired.append((i, sim.now)),
                )
            sim.run()
            return fired, sim.events_fired

        baseline = run(1.0, 1024)
        assert run(0.25, 16) == baseline
        assert run(50.0, 2) == baseline


class TestE7Determinism:
    """The Figure 4.4.1 moving-agent hazard, both movement protocols."""

    @pytest.mark.parametrize(
        "protocol_factory", [MoveWithSeqnoProtocol, CorrectiveMoveProtocol]
    )
    def test_same_outcome_and_schedule(self, protocol_factory):
        def run():
            db = FragmentedDatabase(
                ["X", "Y", "Z"],
                movement=protocol_factory(),
                pipeline=PipelineConfig(batch_size=4, batch_window=2.0),
            )
            db.add_agent("ag", home_node="X")
            db.add_fragment("F", agent="ag", objects=["v"])
            db.load({"v": 0})
            db.finalize()

            def setv(value):
                def body(_ctx):
                    yield Write("v", value)

                return body

            db.sim.schedule_at(
                1, lambda: db.partitions.partition_now([["X"], ["Y", "Z"]])
            )
            db.sim.schedule_at(
                5, lambda: db.submit_update("ag", setv(111), writes=["v"])
            )
            db.sim.schedule_at(
                10, lambda: db.move_agent("ag", "Y", transport_delay=2)
            )
            db.sim.schedule_at(
                25, lambda: db.submit_update("ag", setv(222), writes=["v"])
            )
            db.sim.schedule_at(60.0, db.partitions.heal_now)
            db.quiesce()
            return (
                state_hash(db),
                db.sim.events_fired,
                db.network.messages_sent,
                db.mutual_consistency().consistent,
            )

        first, second = twice(run)
        assert first == second
        assert first[3]  # mutual consistency held


class TestE15Determinism:
    """The E15 scale workload: partition, heal, convergence probe."""

    def test_same_state_and_event_count(self):
        def run():
            nodes = [f"N{i}" for i in range(8)]
            db = FragmentedDatabase(nodes)
            db.add_agent("ag", home_node="N0")
            db.add_fragment("F", agent="ag", objects=["x"])
            db.load({"x": 0})
            db.finalize()

            def bump(_ctx):
                value = yield Read("x")
                yield Write("x", value + 1)

            for i in range(60):
                db.sim.schedule_at(
                    float(i),
                    lambda: db.submit_update("ag", bump, writes=["x"]),
                )
            db.sim.schedule_at(
                10.0,
                lambda: db.partitions.partition_now([nodes[:4], nodes[4:]]),
            )
            db.sim.schedule_at(80.0, db.partitions.heal_now)

            def probe():
                if db.sim.pending:
                    db.sim.schedule(0.25, probe)

            db.sim.schedule_at(80.0, probe)
            db.quiesce()
            return (
                state_hash(db),
                db.sim.events_fired,
                db.network.messages_sent,
                db.nodes["N7"].store.read("x"),
            )

        first, second = twice(run)
        assert first == second
        assert first[3] == 60  # every update reached the far replica


class TestChaosDeterminism:
    """Seeded nemesis runs: loss, duplication, jitter, partitions."""

    CONFIG = NemesisConfig(
        n_nodes=4,
        n_updates=12,
        n_moves=2,
        horizon=150.0,
        loss_rate=0.1,
        dup_rate=0.05,
        jitter=2.0,
        n_partitions=1,
    )

    @pytest.mark.parametrize("seed", [7, 1234, 90210])
    @pytest.mark.parametrize("protocol", ["with-seqno", "corrective"])
    def test_chaos_seed_identical(self, seed, protocol):
        def run():
            return asdict(run_nemesis(seed, protocol, self.CONFIG))

        first, second = twice(run)
        assert first == second
        assert first["audit_ok"]
        assert first["mutually_consistent"]
