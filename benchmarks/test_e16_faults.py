"""E16 — the guarantee matrix on a lossy network, and its price.

E13 stresses the movement protocols with partitions only; E16 drops
the reliable-substrate assumption entirely.  A seeded nemesis layers
message loss, duplication, and latency jitter under the same randomized
workload, with the ack/retransmit delivery layer switched on, and
sweeps the loss rate:

* the Section 4.4 guarantee table must hold at every loss rate up to
  20% — and the *final state hash* of each reliable protocol's run
  must equal the fault-free run of the same seed (message faults cost
  retransmissions and time, never outcomes);
* retransmit overhead and convergence time grow with the loss rate —
  that curve is the price of implementing the paper's "all messages
  are eventually delivered" assumption, and it lands in
  ``BENCH_faults.json``;
* a full-chaos pass (loss + bursts + flaps + crashes + partitions)
  re-checks the table when connectivity is also under attack.

Hash matching is only claimed for the loss/dup/jitter sweep:
connectivity episodes legitimately change protocol *decisions* (a
majority check sees a different quorum), so full-chaos runs assert the
guarantee table, not bitwise convergence.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.analysis.nemesis import NemesisConfig, run_nemesis
from repro.analysis.report import format_table
from repro.analysis.torture import PROTOCOLS

SEEDS = range(6)
LOSS_RATES = (0.05, 0.1, 0.2)
RELIABLE_PROTOCOLS = ("majority", "with-data", "with-seqno")
CHAOS_SEEDS = range(4)

BASELINE = NemesisConfig(
    loss_rate=0.0, dup_rate=0.0, jitter=0.0, n_partitions=0
)
CHAOS = NemesisConfig(
    loss_rate=0.15,
    dup_rate=0.05,
    jitter=2.0,
    n_bursts=1,
    n_flaps=2,
    n_crashes=1,
    n_partitions=1,
)


def _lossy(loss_rate: float) -> NemesisConfig:
    return NemesisConfig(
        loss_rate=loss_rate, dup_rate=0.05, jitter=2.0, n_partitions=0
    )


def sweep():
    rows = []
    hash_mismatches = []
    violations = []
    for protocol in PROTOCOLS:
        baselines = {
            seed: run_nemesis(seed, protocol, BASELINE) for seed in SEEDS
        }
        base_converge = sum(
            r.converge_time for r in baselines.values()
        ) / len(baselines)
        rows.append(
            {
                "protocol": protocol,
                "loss": 0.0,
                "drops": 0,
                "retransmits": 0,
                "dups dropped": 0,
                "exhausted": 0,
                "messages": sum(
                    r.messages_sent for r in baselines.values()
                ),
                "converge": round(base_converge, 1),
                "hash match": f"{len(SEEDS)}/{len(SEEDS)}",
            }
        )
        for loss in LOSS_RATES:
            config = _lossy(loss)
            results = [run_nemesis(seed, protocol, config) for seed in SEEDS]
            matches = sum(
                r.state_hash == baselines[r.seed].state_hash for r in results
            )
            for r in results:
                if not r.respects_guarantees():
                    violations.append((protocol, loss, r.seed))
                if (
                    protocol in RELIABLE_PROTOCOLS
                    and r.state_hash != baselines[r.seed].state_hash
                ):
                    hash_mismatches.append((protocol, loss, r.seed))
            rows.append(
                {
                    "protocol": protocol,
                    "loss": loss,
                    "drops": sum(r.drops for r in results),
                    "retransmits": sum(r.retransmits for r in results),
                    "dups dropped": sum(r.dups_dropped for r in results),
                    "exhausted": sum(r.exhausted for r in results),
                    "messages": sum(r.messages_sent for r in results),
                    "converge": round(
                        sum(r.converge_time for r in results) / len(results),
                        1,
                    ),
                    "hash match": f"{matches}/{len(SEEDS)}",
                }
            )
    return rows, hash_mismatches, violations


def test_e16_loss_sweep(benchmark, report):
    rows, hash_mismatches, violations = run_once(benchmark, sweep)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                f"E16 — loss-rate sweep under ack/retransmit delivery "
                f"({len(SEEDS)} seeds each; dup=0.05, jitter=2.0)"
            ),
        )
    )
    assert not violations, violations
    assert not hash_mismatches, hash_mismatches
    # Retransmit overhead must actually track the loss rate (the curve
    # the benchmark exists to measure).
    for protocol in PROTOCOLS:
        per_loss = [
            row["retransmits"]
            for row in rows
            if row["protocol"] == protocol and row["loss"] > 0.0
        ]
        assert per_loss == sorted(per_loss), (protocol, per_loss)
        assert per_loss[-1] > 0
    baseline = {
        "bench": "e16_faults",
        "seeds": len(SEEDS),
        "workload": {
            "nodes": BASELINE.n_nodes,
            "updates": BASELINE.n_updates,
            "moves": BASELINE.n_moves,
            "dup_rate": 0.05,
            "jitter": 2.0,
        },
        "rows": [
            {
                "protocol": row["protocol"],
                "loss_rate": row["loss"],
                "drops": row["drops"],
                "retransmits": row["retransmits"],
                "duplicates_dropped": row["dups dropped"],
                "exhausted": row["exhausted"],
                "messages_sent": row["messages"],
                "mean_converge_time": row["converge"],
                "hash_matches": row["hash match"],
            }
            for row in rows
        ],
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_faults.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    report(f"fault sweep baseline -> {path.name}: {len(rows)} rows")


def test_e16b_full_chaos(benchmark, report):
    """Loss + bursts + flaps + crashes + partitions, all protocols."""

    def chaos():
        outcomes = []
        for protocol in PROTOCOLS:
            for seed in CHAOS_SEEDS:
                outcomes.append(run_nemesis(seed, protocol, CHAOS))
        return outcomes

    outcomes = run_once(benchmark, chaos)
    broken = [
        (r.protocol, r.seed) for r in outcomes if not r.respects_guarantees()
    ]
    report(
        f"E16b — full chaos ({len(outcomes)} runs: loss=0.15 + burst + "
        f"2 flaps + crash + partition): {len(broken)} guarantee "
        f"violations, {sum(r.retransmits for r in outcomes)} retransmits, "
        f"{sum(r.exhausted for r in outcomes)} exhausted"
    )
    assert not broken, broken
    assert all(r.exhausted == 0 for r in outcomes)
