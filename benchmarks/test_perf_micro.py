"""Performance microbenchmarks of the substrate layers.

Unlike the E* experiment benches (one deterministic round, table
output), these run multiple timed rounds and exist to catch performance
regressions in the hot paths: local transaction execution, quasi-
transaction fan-out, serialization-graph construction, and a full
system-scale end-to-end run.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro import FragmentedDatabase, PipelineConfig, QtBatch
from repro.cc import LocalScheduler, Read, Write
from repro.core.gsg import global_serialization_graph
from repro.net.broadcast import SeqPayload
from repro.net.message import Message
from repro.sim import Simulator
from repro.storage import ObjectStore
from repro.storage.values import Version


def test_perf_local_scheduler_throughput(benchmark):
    """Commit 1000 small transactions through strict 2PL."""

    def run():
        sim = Simulator()
        store = ObjectStore("n")
        store.load({f"o{i}": 0 for i in range(50)})
        sched = LocalScheduler("n", store, sim=sim)

        def body(index):
            def inner(_ctx):
                value = yield Read(f"o{index % 50}")
                yield Write(f"o{index % 50}", value + 1)

            return inner

        for i in range(1000):
            sched.submit(f"T{i}", body(i))
        sim.run()
        return sched.committed

    committed = benchmark(run)
    assert committed == 1000


def test_perf_broadcast_fanout(benchmark):
    """Propagate 200 updates across an 8-node full mesh."""

    def run():
        db = FragmentedDatabase([f"N{i}" for i in range(8)])
        db.add_agent("ag", home_node="N0")
        db.add_fragment("F", agent="ag", objects=["x"])
        db.load({"x": 0})
        db.finalize()

        def bump(_ctx):
            value = yield Read("x")
            yield Write("x", value + 1)

        for _ in range(200):
            db.submit_update("ag", bump, writes=["x"])
        db.quiesce()
        return db.nodes["N7"].store.read("x")

    final = benchmark(run)
    assert final == 200


def test_perf_gsg_construction(benchmark):
    """Build the global serialization graph over a 600-commit history."""
    db = FragmentedDatabase(["A", "B", "C"])
    for i in range(3):
        db.add_agent(f"ag{i}", home_node=["A", "B", "C"][i])
        db.add_fragment(f"F{i}", agent=f"ag{i}", objects=[f"o{i}"])
    db.load({"o0": 0, "o1": 0, "o2": 0})
    db.finalize()

    def body(me, other):
        def inner(_ctx):
            theirs = yield Read(other)
            yield Write(me, theirs + 1)

        return inner

    for i in range(600):
        owner = i % 3
        db.submit_update(
            f"ag{owner}",
            body(f"o{owner}", f"o{(owner + 1) % 3}"),
            reads=[f"o{(owner + 1) % 3}"],
            writes=[f"o{owner}"],
        )
    db.quiesce()

    graph = benchmark(lambda: global_serialization_graph(db.recorder))
    assert len(graph) == 600


def test_perf_end_to_end_partitioned_run(benchmark):
    """A full system run: 6 nodes, partition + heal, 300 updates."""

    def run():
        db = FragmentedDatabase([f"N{i}" for i in range(6)])
        for i in range(3):
            db.add_agent(f"ag{i}", home_node=f"N{i}")
            db.add_fragment(f"F{i}", agent=f"ag{i}", objects=[f"o{i}"])
        db.load({"o0": 0, "o1": 0, "o2": 0})
        db.finalize()

        def bump(obj):
            def inner(_ctx):
                value = yield Read(obj)
                yield Write(obj, value + 1)

            return inner

        for i in range(300):
            db.sim.schedule_at(
                float(i),
                lambda i=i: db.submit_update(
                    f"ag{i % 3}", bump(f"o{i % 3}"), writes=[f"o{i % 3}"]
                ),
            )
        db.sim.schedule_at(
            50.0,
            lambda: db.partitions.partition_now(
                [["N0", "N1"], ["N2", "N3", "N4", "N5"]]
            ),
        )
        db.sim.schedule_at(200.0, db.partitions.heal_now)
        db.quiesce()
        assert db.mutual_consistency().consistent
        return db.availability_stats().committed

    committed = benchmark(run)
    assert committed == 300


def test_hot_path_dataclasses_are_slotted():
    """The per-message/per-version envelopes are the allocation hot
    path; slots keep them dict-free (and frozen where shared)."""
    instances = [
        Message("A", "B", "qt", None),
        SeqPayload("A", 0, "qt", None),
        Version(0),
        QtBatch(origin="A", qts=(), created_at=0.0),
    ]
    for obj in instances:
        assert not hasattr(obj, "__dict__"), type(obj).__name__
        assert "__slots__" in type(obj).__dict__, type(obj).__name__


def _fanout(pipeline=None):
    """200 updates across an 8-node full mesh (the fan-out hot path)."""
    db = FragmentedDatabase([f"N{i}" for i in range(8)], pipeline=pipeline)
    db.add_agent("ag", home_node="N0")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()

    def bump(_ctx):
        value = yield Read("x")
        yield Write("x", value + 1)

    for _ in range(200):
        db.submit_update("ag", bump, writes=["x"])
    db.quiesce()
    assert db.nodes["N7"].store.read("x") == 200
    return db


def test_perf_pipeline_batched_fanout(benchmark, report):
    """Batched vs unbatched propagation of the same 200-update fan-out.

    Emits ``BENCH_pipeline.json`` at the repo root: the replication
    pipeline's perf baseline (message counts are deterministic; wall
    times are informational).
    """
    config = PipelineConfig(batch_size=16, batch_window=1.0)

    def compare():
        timings, dbs = {}, {}
        for label, cfg in (("unbatched", None), ("batched", config)):
            start = time.perf_counter()
            dbs[label] = _fanout(cfg)
            timings[label] = time.perf_counter() - start
        return timings, dbs

    timings, dbs = run_once(benchmark, compare)
    qt_plain = dbs["unbatched"].network.messages_by_kind["qt"]
    qt_batched = dbs["batched"].network.messages_by_kind["qt"]
    assert qt_plain >= 2 * qt_batched
    baseline = {
        "bench": "pipeline_fanout",
        "nodes": 8,
        "updates": 200,
        "batch_size": config.batch_size,
        "batch_window": config.batch_window,
        "qt_messages": {"unbatched": qt_plain, "batched": qt_batched},
        "total_messages": {
            label: db.network.messages_sent for label, db in dbs.items()
        },
        "qt_reduction": round(qt_plain / qt_batched, 2),
        "wall_seconds": {
            label: round(seconds, 4) for label, seconds in timings.items()
        },
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    report(
        f"pipeline fan-out baseline -> {path.name}: "
        f"{qt_plain} -> {qt_batched} qt messages "
        f"({baseline['qt_reduction']}x reduction)"
    )
