"""E3 — Figures 2.1/2.2 + the Section 2 walkthrough under
fragments-and-agents.

The same two-$200-withdrawals hazard as E2, but on the paper's proposed
schema: BALANCES (agent: central office), per-owner ACTIVITY fragments
(agents: the customers), per-owner RECORDED fragments (agent: central
office).  Measured claims:

* both withdrawals are granted — full availability, like the
  free-for-all baseline;
* the overdraft is discovered and penalized exactly once, at the
  central office — unlike log transformation, no decentralized
  corrective-action quagmire is possible (only node A ever writes
  BALANCES);
* mutual consistency and fragmentwise serializability hold throughout;
* single-fragment predicates are never violated; the only inconsistency
  is the multi-fragment "view >= 0" predicate, exactly as Section 4.3
  predicts.
"""

from conftest import run_once

from repro import FragmentedDatabase
from repro.analysis.report import format_table
from repro.workloads import BankingWorkload


def run_section2():
    db = FragmentedDatabase(["A", "B"])
    bank = BankingWorkload(
        db,
        accounts={"00001": 300.0},
        central_node="A",
        owners={"00001": [("alice", "A"), ("bob", "B")]},
        overdraft_fine=25.0,
        view_mode="balance",
    )
    db.finalize()
    db.partitions.partition_now([["A"], ["B"]])
    at_a = bank.withdraw("00001", 200.0, owner=0)
    at_b = bank.withdraw("00001", 200.0, owner=1)
    db.run(until=20)
    mid_balance_a = bank.balance_at("00001", "A")
    mid_letters = len(bank.stats.letters)
    db.partitions.heal_now()
    db.quiesce()
    balance_writers = {
        txn.node
        for txn in db.recorder.committed
        if any(w.obj.startswith("bal:") for w in txn.writes)
    }
    violations = db.predicates.evaluate(db.nodes["A"].store)
    return {
        "at_a": at_a.result[0],
        "at_b": at_b.result[0],
        "mid_balance_a": mid_balance_a,
        "mid_letters": mid_letters,
        "letters": list(bank.stats.letters),
        "final_balance": bank.balance_at("00001", "A"),
        "balance_writers": sorted(balance_writers),
        "mutual": db.mutual_consistency().consistent,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "single_violations": violations.single,
        "multi_violations": violations.multi,
    }


def test_e3_banking_fragments(benchmark, report):
    result = run_once(benchmark, run_section2)
    rows = [
        ["withdrawal at A (alice)", result["at_a"]],
        ["withdrawal at B (bob)", result["at_b"]],
        ["balance at A mid-partition", result["mid_balance_a"]],
        ["letters mid-partition", result["mid_letters"]],
        ["letters after heal", len(result["letters"])],
        ["fine assessed", result["letters"][0].fine],
        ["final balance (all replicas)", result["final_balance"]],
        ["nodes that wrote BALANCES", ",".join(result["balance_writers"])],
        ["mutual consistency", result["mutual"]],
        ["fragmentwise serializability", result["fragmentwise"]],
        ["single-fragment violations", result["single_violations"]],
        ["multi-fragment violations", result["multi_violations"]],
    ]
    report(
        format_table(
            ["measure", "value"],
            rows,
            title="E3 / Section 2 — fragments & agents on the banking schema",
        )
    )
    assert result["at_a"] == "granted" and result["at_b"] == "granted"
    assert result["mid_balance_a"] == 100.0
    assert result["mid_letters"] == 0
    assert len(result["letters"]) == 1  # penalized exactly once
    assert result["final_balance"] == -125.0
    assert result["balance_writers"] == ["A"]  # centralized decisions
    assert result["mutual"] and result["fragmentwise"]
    assert result["single_violations"] == 0
    assert result["multi_violations"] >= 1
