"""E21 — the availability accountant's books against E20's ground truth.

The E20 workload re-runs with the timeline sampler armed and the
accountant replaying the trace.  The gates prove the observability
layer: the timeline dump hashes identically across two runs of the
seed, every accountant crash window opens at the kill and closes no
later than the behaviorally measured first-commit window, and the
supervised/unsupervised contrast reproduces from the accountant alone.
The record is deterministic and compared field-for-field against the
committed ``BENCH_obs.json``; regenerate with ``python -m repro.cli
availability-accounting-bench --json BENCH_obs.json`` after
intentional changes.
"""

from conftest import run_once

from repro.analysis.availability_bench import (
    check_gates,
    load_committed,
    run_availability_accounting_bench,
)
from repro.analysis.report import format_table


def test_e21_availability_accounting_bench(benchmark, report):
    result = run_once(benchmark, run_availability_accounting_bench)
    rows = []
    for tag in ("supervised", "unsupervised"):
        mode = result[tag]
        rows.append(
            [
                tag,
                f"{mode['write_availability'] * 100:.2f}%",
                f"{mode['read_availability'] * 100:.2f}%",
                mode["worst_window"],
                mode["windows"],
                mode["incidents"],
                mode["timeline_records"],
            ]
        )
    report(
        format_table(
            [
                "mode", "write-avail", "read-avail", "worst-win",
                "windows", "incidents", "tl-records",
            ],
            rows,
            title=(
                f"E21 — availability accounting: {result['nodes']} nodes, "
                f"{result['fragments']} fragments, k="
                f"{result['replication_factor']}"
            ),
        )
    )
    ok, messages = check_gates(result, committed=load_committed())
    assert ok, "\n".join(messages)
