"""E14 — crash-stop failures: the §4.4 "node goes down" premise, measured.

The paper motivates agent movement with node failure; this bench
exercises the failure model end-to-end: a replica crashes mid-workload
(volatile state lost, WAL survives), traffic continues at the healthy
nodes, the crashed node recovers via WAL replay + anti-entropy, and —
separately — the *agent's own home* crashes and the agent escapes to a
new node under the majority protocol (the "token reconstituted through
an election" parenthetical).

Measured claims:

* availability at the healthy nodes is unaffected by a replica crash;
* after recovery, the returned replica converges (mutual consistency)
  and the history remains fragmentwise serializable;
* WAL replay restores the pre-crash stable prefix; anti-entropy +
  held middleware traffic deliver the rest;
* with the majority protocol, the agent escapes a crashed home after
  one move and service resumes without the failed node.
"""

from conftest import run_once

from repro import FragmentedDatabase, MajorityCommitProtocol
from repro.analysis.report import format_table
from repro.cc.ops import Read, Write


def bump(obj):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def run_replica_crash():
    db = FragmentedDatabase(["A", "B", "C", "D"])
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    trackers = []
    for i in range(30):
        db.sim.schedule_at(
            float(i * 2),
            lambda: trackers.append(
                db.submit_update("ag", bump("x"), writes=["x"])
            ),
        )
    db.sim.schedule_at(10.0, lambda: db.fail_node("C"))
    db.sim.schedule_at(45.0, lambda: db.recover_node("C"))
    db.quiesce()
    replica = db.nodes["C"]
    return {
        "scenario": "replica crash",
        "submitted": len(trackers),
        "committed": sum(1 for t in trackers if t.succeeded),
        "crashes": replica.crashes,
        "wal entries": len(replica.wal),
        "final x everywhere": db.nodes["C"].store.read("x"),
        "MC": db.mutual_consistency().consistent,
        "FW": db.fragmentwise_serializability().ok,
    }


def run_agent_home_crash():
    db = FragmentedDatabase(
        ["A", "B", "C", "D"], movement=MajorityCommitProtocol()
    )
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    trackers = []
    for i in range(10):
        db.sim.schedule_at(
            float(i * 2),
            lambda: trackers.append(
                db.submit_update("ag", bump("x"), writes=["x"])
            ),
        )
    db.sim.schedule_at(8.0, lambda: db.fail_node("A"))
    # The token is reconstituted at B; the majority resync rebuilds the
    # fragment's history without A's participation.
    db.sim.schedule_at(12.0, lambda: db.move_agent("ag", "B",
                                                   transport_delay=1.0))
    for i in range(10):
        db.sim.schedule_at(
            40.0 + i * 2,
            lambda: trackers.append(
                db.submit_update("ag", bump("x"), writes=["x"])
            ),
        )
    db.sim.schedule_at(80.0, lambda: db.recover_node("A"))
    db.quiesce()
    return {
        "scenario": "agent home crash",
        "submitted": len(trackers),
        "committed": sum(1 for t in trackers if t.succeeded),
        "crashes": db.nodes["A"].crashes,
        "wal entries": len(db.nodes["A"].wal),
        "final x everywhere": db.nodes["A"].store.read("x"),
        "MC": db.mutual_consistency().consistent,
        "FW": db.fragmentwise_serializability().ok,
    }


def test_e14_crash_recovery(benchmark, report):
    replica, home = run_once(
        benchmark, lambda: (run_replica_crash(), run_agent_home_crash())
    )
    headers = list(replica)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (replica, home)],
            title=(
                "E14 — crash-stop failure + WAL recovery "
                "(replica crash t=10..45; agent-home crash t=8, escape via "
                "majority move, recovery t=80)"
            ),
        )
    )
    # A replica crash never costs the agent availability.
    assert replica["committed"] == replica["submitted"]
    assert replica["MC"] and replica["FW"]
    assert replica["final x everywhere"] == replica["submitted"]
    # The agent escapes a crashed home; post-move service resumes fully.
    assert home["MC"] and home["FW"]
    assert home["committed"] >= 10  # everything after the escape, at least
    assert home["final x everywhere"] == home["committed"]
