"""Shared helpers for the experiment benches.

Every bench prints the rows/series of the paper artifact it reproduces
through the ``report`` fixture (write-through past pytest's capture, so
the tables land in ``bench_output.txt``), and registers its run with
pytest-benchmark for timing.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Emit experiment output through pytest's capture."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit


def run_once(benchmark, fn):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
