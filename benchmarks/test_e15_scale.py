"""E15 — scale behaviour of the fragments-and-agents framework.

Not a paper figure (the paper has none), but the natural question a
downstream adopter asks: how do the framework's costs grow with the
number of nodes?  The paper's propagation design predicts:

* messages per update grow linearly with n (one broadcast fan-out);
* convergence after a heal stays flat (one network diameter — installs
  pipeline, held messages release in a single wave);
* availability of the fragments-and-agents options stays at 1.0 at
  every scale (it never depended on reaching anyone).
"""

import hashlib

from conftest import run_once

from repro import FragmentedDatabase, PipelineConfig
from repro.analysis.report import format_table
from repro.cc.ops import Read, Write
from repro.core.properties import check_mutual_consistency

SCALES = [4, 8, 12, 16]
UPDATES = 60


def state_hash(db):
    """Digest of every replica's store: (node, obj, value, writer, vno)."""
    digest = hashlib.sha256()
    for name in sorted(db.nodes):
        store = db.nodes[name].store
        for obj in sorted(store.names):
            version = store.read_version(obj)
            digest.update(
                f"{name}|{obj}|{version.value!r}|{version.writer}|"
                f"{version.version_no}\n".encode()
            )
    return digest.hexdigest()


def run_at_scale(n_nodes, pipeline=None):
    nodes = [f"N{i}" for i in range(n_nodes)]
    db = FragmentedDatabase(nodes, pipeline=pipeline)
    db.add_agent("ag", home_node="N0")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()

    def bump(_ctx):
        value = yield Read("x")
        yield Write("x", value + 1)

    trackers = []
    for i in range(UPDATES):
        db.sim.schedule_at(
            float(i),
            lambda: trackers.append(
                db.submit_update("ag", bump, writes=["x"])
            ),
        )
    half = nodes[: n_nodes // 2]
    other = nodes[n_nodes // 2 :]
    db.sim.schedule_at(10.0, lambda: db.partitions.partition_now([half, other]))
    heal_at = 80.0
    db.sim.schedule_at(heal_at, db.partitions.heal_now)

    # Measure convergence after the heal.
    converged_at = {"t": None}

    def probe():
        if converged_at["t"] is None and check_mutual_consistency(
            db.nodes.values()
        ).consistent and db.sim.now >= heal_at:
            converged_at["t"] = db.sim.now
        if db.sim.pending:
            db.sim.schedule(0.25, probe)

    db.sim.schedule_at(heal_at, probe)
    db.quiesce()
    if converged_at["t"] is None:
        converged_at["t"] = db.sim.now
    return {
        "nodes": n_nodes,
        "updates": UPDATES,
        "committed": sum(1 for t in trackers if t.succeeded),
        "messages": db.network.messages_sent,
        "msgs/update": round(db.network.messages_sent / UPDATES, 1),
        "qt msgs": db.network.messages_by_kind["qt"],
        "delta-t after heal": round(converged_at["t"] - heal_at, 2),
        "MC": db.mutual_consistency().consistent,
        "state": state_hash(db),
    }


def test_e15_scale(benchmark, report):
    rows = run_once(benchmark, lambda: [run_at_scale(n) for n in SCALES])
    headers = [h for h in rows[0] if h != "state"]
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                f"E15 — scale sweep: {UPDATES} updates, half the nodes "
                f"severed for t=10..80"
            ),
        )
    )
    for row in rows:
        assert row["committed"] == UPDATES  # availability 1.0 at any scale
        assert row["MC"]
    # Messages per update grow linearly with n (broadcast fan-out)...
    ratios = [row["msgs/update"] / row["nodes"] for row in rows]
    assert max(ratios) / min(ratios) < 1.5
    # ...while post-heal convergence stays flat.
    deltas = [row["delta-t after heal"] for row in rows]
    assert max(deltas) <= min(deltas) + 2.0


def test_e15_batched_pipeline(benchmark, report):
    """Group commit at batch-size 16: >= 2x fewer qt broadcast messages,
    byte-identical final replica state."""
    batched_config = PipelineConfig(batch_size=16, batch_window=8.0)

    def compare():
        return [
            (n, run_at_scale(n), run_at_scale(n, batched_config))
            for n in SCALES
        ]

    results = run_once(benchmark, compare)
    headers = ["nodes", "qt msgs", "qt msgs (batched)", "reduction",
               "same state", "MC (batched)"]
    rows = []
    for n, plain, batched in results:
        rows.append(
            [
                n,
                plain["qt msgs"],
                batched["qt msgs"],
                f"{plain['qt msgs'] / batched['qt msgs']:.1f}x",
                plain["state"] == batched["state"],
                batched["MC"],
            ]
        )
    report(
        format_table(
            headers,
            rows,
            title=(
                "E15 — batched vs unbatched propagation "
                "(batch_size=16, batch_window=8.0)"
            ),
        )
    )
    for n, plain, batched in results:
        assert batched["committed"] == UPDATES
        assert batched["MC"]
        # The batch is a transport envelope: same installs, same state.
        assert plain["state"] == batched["state"]
        # Group commit collapses the qt fan-out by >= 2x.
        assert plain["qt msgs"] >= 2 * batched["qt msgs"]
