"""E8 — the Section 4.2 theorem (and appendix Figures 8.1/8.2),
validated on randomized systems.

Two seed sweeps of random fragments-and-agents databases with random
transactions, random timing, and random partitions:

* **forest group** — read-access graphs that are elementarily acyclic
  by construction.  The theorem predicts ZERO runs with a cyclic global
  serialization graph;
* **cyclic group** — read-access graphs forced to contain an undirected
  cycle.  Violations must actually appear (the Figure 4.3.1
  counterexample generalizes), demonstrating the theorem's condition is
  not vacuous.

Both groups must preserve fragmentwise serializability and mutual
consistency in every run (the Section 4.3 guarantees are unconditional
for fixed agents).
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.theorem import run_random_workload

RUNS = 120


def sweep(acyclic):
    violations = 0
    fw_failures = 0
    mc_failures = 0
    committed = 0
    transactions = 0
    for seed in range(RUNS):
        result = run_random_workload(
            seed, acyclic=acyclic, n_transactions=16
        )
        transactions += result.transactions
        committed += result.committed
        if not result.globally_serializable:
            violations += 1
        if not result.fragmentwise:
            fw_failures += 1
        if not result.mutually_consistent:
            mc_failures += 1
    return {
        "read-access graphs": "forests" if acyclic else "cyclic",
        "runs": RUNS,
        "transactions": transactions,
        "committed": committed,
        "GS violations": violations,
        "FW failures": fw_failures,
        "MC failures": mc_failures,
    }


def test_e8_theorem_validation(benchmark, report):
    forest, cyclic = run_once(
        benchmark, lambda: (sweep(acyclic=True), sweep(acyclic=False))
    )
    headers = list(forest)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (forest, cyclic)],
            title=(
                "E8 / Section 4.2 theorem — randomized validation "
                f"({RUNS} seeded runs per group, random partitions)"
            ),
        )
    )
    assert forest["GS violations"] == 0  # the theorem
    assert cyclic["GS violations"] > 0  # the condition is not vacuous
    for row in (forest, cyclic):
        assert row["FW failures"] == 0
        assert row["MC failures"] == 0
