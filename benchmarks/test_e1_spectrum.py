"""E1 — Figure 1.1: the correctness-availability spectrum, measured.

One scripted banking scenario (joint accounts, a partition isolating
the central office, a fixed operation stream) replayed on six systems
from the conservative end to the free-for-all end.  The paper's figure
is qualitative; this table is its quantitative rendering.

Expected shape:
  * availability rises monotonically within the fragments-and-agents
    family (read-locks < acyclic = unrestricted = 1.0) and the
    conservative baseline is the least available;
  * global serializability holds for mutual exclusion, Section 4.1 and
    Section 4.2, and is lost exactly at Section 4.3;
  * every system preserves replica convergence (mutual consistency);
  * the free options pay in corrective actions / multi-fragment
    predicate violations instead of denied service.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.spectrum import (
    SPECTRUM_HEADERS,
    SpectrumConfig,
    run_spectrum,
)


def test_e1_spectrum(benchmark, report):
    config = SpectrumConfig()
    rows = run_once(benchmark, lambda: run_spectrum(config))
    table = format_table(
        SPECTRUM_HEADERS,
        [row.as_tuple() for row in rows],
        title=(
            "E1 / Figure 1.1 — correctness vs availability "
            f"(partition {config.partition_start}-{config.partition_end} "
            f"of {config.horizon} ticks, central office isolated)"
        ),
    )
    report(table)

    by_name = {row.system: row for row in rows}
    # Availability ordering along the spectrum.
    assert by_name["mutual-exclusion"].availability < 1.0
    assert (
        by_name["mutual-exclusion"].availability
        <= by_name["fa-read-locks"].availability
    )
    assert by_name["fa-acyclic"].availability == 1.0
    assert by_name["fa-unrestricted"].availability == 1.0
    assert by_name["log-transform"].availability == 1.0
    # Correctness guarantees per the paper.
    assert by_name["mutual-exclusion"].globally_serializable
    assert by_name["fa-read-locks"].globally_serializable
    assert by_name["fa-acyclic"].globally_serializable  # the theorem
    assert not by_name["fa-unrestricted"].globally_serializable
    assert by_name["fa-unrestricted"].fragmentwise_serializable
    # Everyone converges.
    assert all(row.mutually_consistent for row in rows)
