"""E9 — availability vs partition duration (the Section 1/4 claims as
a curve).

The E1 scenario with the partition duration swept from 0% to ~80% of
the run.  Expected series shape:

* mutual exclusion and Section 4.1 degrade roughly linearly with the
  partition duration (service denied while severed);
* the Section 4.2 and 4.3 fragments-and-agents options hold at 1.0
  regardless — the paper's headline claim;
* the optimistic baseline's *effective* availability (accepted minus
  backed out) also degrades: longer partitions mean more conflicting
  optimistic work to undo.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.spectrum import (
    SpectrumConfig,
    run_fragments_agents,
    run_mutual_exclusion,
    run_optimistic,
)
from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.read_locks import ReadLocksStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy

DURATIONS = [0.0, 100.0, 200.0, 300.0, 400.0, 480.0]


def config_for(duration):
    return SpectrumConfig(
        partition_start=60.0,
        partition_end=60.0 + max(duration, 0.001),
        horizon=600.0,
    )


def sweep():
    series = []
    for duration in DURATIONS:
        config = config_for(duration)
        row = {
            "partition duration": duration,
            "mutual-exclusion": run_mutual_exclusion(config).availability,
            "fa-read-locks": run_fragments_agents(
                config,
                ReadLocksStrategy(lock_timeout=60.0, retry_interval=2.0),
                "fa-read-locks",
                view_mode="own",
            ).availability,
            "fa-acyclic": run_fragments_agents(
                config, AcyclicReadsStrategy(), "fa-acyclic", view_mode="none"
            ).availability,
            "fa-unrestricted": run_fragments_agents(
                config,
                UnrestrictedReadsStrategy(),
                "fa-unrestricted",
                view_mode="own",
            ).availability,
            "optimistic": run_optimistic(config).availability,
        }
        series.append(row)
    return series


def test_e9_partition_sweep(benchmark, report):
    series = run_once(benchmark, sweep)
    headers = list(series[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in series],
            title=(
                "E9 — availability vs partition duration "
                "(600-tick horizon, partition starts at t=60)"
            ),
        )
    )
    first, last = series[0], series[-1]
    # The conservative systems degrade as partitions lengthen...
    assert last["mutual-exclusion"] < first["mutual-exclusion"]
    assert last["fa-read-locks"] < first["fa-read-locks"]
    # ...the high-availability fragments-and-agents options do not.
    for row in series:
        assert row["fa-acyclic"] == 1.0
        assert row["fa-unrestricted"] == 1.0
    # Crossover: under long partitions the free options dominate the
    # conservative ones by a wide margin.
    assert last["fa-unrestricted"] - last["mutual-exclusion"] > 0.2
