"""E5 — Figures 4.3.1 / 4.3.2: the non-serializable schedule, replayed.

Three fragments F1{a}, F2{b}, F3{c} whose read-access graph (F1->F2,
F1->F3, F2->F3) is acyclic but NOT elementarily acyclic.  The paper's
exact interleaving of T1, T2, T3 is reproduced on the simulated network
(install timing races produce the three dependencies) and the global
serialization graph is built from the recorded history.

Expected output: the cyclic g.s.g. of Figure 4.3.2 —

    T3 -> T2 (T3's w(c) installed at home(A(F2)) before T2 read c)
    T2 -> T1 (T2's w(b) installed at home(A(F1)) before T1 read b)
    T1 -> T3 (T1 read c before T3's w(c) installed at home(A(F1)))

— while fragmentwise serializability and mutual consistency survive.
"""

from conftest import run_once

from repro import FragmentedDatabase, Topology, scripted_body
from repro.analysis.report import format_table
from repro.core.gsg import global_serialization_graph


def run_figure_43():
    topo = Topology.line(["N1", "N2", "N3"], latency=1.0)
    db = FragmentedDatabase(
        ["N1", "N2", "N3"], topology=topo, action_delay=1.5
    )
    for i, node in [(1, "N1"), (2, "N2"), (3, "N3")]:
        db.add_agent(f"A{i}", home_node=node)
        db.add_fragment(f"F{i}", agent=f"A{i}", objects=["abc"[i - 1]])
    db.load({"a": 0, "b": 0, "c": 0})
    db.declare_reads("F1", fragments=["F2", "F3"])
    db.declare_reads("F2", fragments=["F3"])
    db.finalize()
    db.nodes["N1"].scheduler.action_delay = 4.0

    db.sim.schedule_at(0, lambda: db.submit_update(
        "A3", scripted_body([("r", "c"), ("w", "c", 1)]),
        writes=["c"], txn_id="T3"))
    db.sim.schedule_at(4.5, lambda: db.submit_update(
        "A2", scripted_body([("r", "c"), ("w", "b", 1)]),
        writes=["b"], txn_id="T2"))
    db.sim.schedule_at(4.6, lambda: db.submit_update(
        "A1", scripted_body([("r", "c"), ("r", "b"), ("w", "a", 1)]),
        writes=["a"], txn_id="T1"))
    db.quiesce()

    graph = global_serialization_graph(db.recorder)
    gs = db.global_serializability()
    return {
        "rag_edges": db.rag.edges,
        "rag_elementarily_acyclic": db.rag.is_elementarily_acyclic(),
        "gsg_edges": [(str(u), str(v)) for u, v in graph.edges],
        "gs_ok": gs.ok,
        "cycle": gs.violations,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "mutual": db.mutual_consistency().consistent,
    }


def test_e5_nonserializable_schedule(benchmark, report):
    result = run_once(benchmark, run_figure_43)
    rows = [
        ["read-access graph (Fig 4.3.1)", result["rag_edges"]],
        ["elementarily acyclic?", result["rag_elementarily_acyclic"]],
        ["g.s.g. edges (Fig 4.3.2)", result["gsg_edges"]],
        ["globally serializable?", result["gs_ok"]],
        ["witness cycle", result["cycle"][0] if result["cycle"] else "-"],
        ["fragmentwise serializable?", result["fragmentwise"]],
        ["mutually consistent?", result["mutual"]],
    ]
    report(
        format_table(
            ["artifact", "value"],
            rows,
            title="E5 / Figures 4.3.1-4.3.2 — the Section 4.3 counterexample",
        )
    )
    assert not result["rag_elementarily_acyclic"]
    assert not result["gs_ok"]
    assert set(result["gsg_edges"]) == {
        ("T3", "T2"), ("T2", "T1"), ("T1", "T3")
    }
    assert result["fragmentwise"]
    assert result["mutual"]
