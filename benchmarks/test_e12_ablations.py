"""E12 — ablations: removing each load-bearing mechanism breaks the
property it carries.

The paper's Section 3.2 requirements are not decorative; DESIGN.md §6
promises to show each one earning its keep:

* **FIFO broadcast off** — requirement (2) ("messages broadcast by one
  of the nodes are processed at all other nodes in the same order as
  they were sent") dropped: replicas install a fragment's updates in
  arrival order and diverge — mutual consistency lost;
* **atomic installation off** — quasi-transactions applied write-by-
  write instead of as one atomic unit: readers observe partial effects
  — Property 2 lost;
* **read-lock leases off** — a Section 4.1 grant severed by a partition
  leaves a ghost lock at the agent's home node until the heal: the
  agent's own updates freeze, measured as a collapse in fold
  throughput during the partition.
"""

from conftest import run_once

from repro import FragmentedDatabase, ReadLocksStrategy, scripted_body
from repro.analysis.report import format_table
from repro.analysis.spectrum import SpectrumConfig, run_fragments_agents
from repro.cc.ops import Write
from repro.core.properties import check_property2


def run_fifo_ablation(fifo):
    from repro import InstantMoveProtocol

    # Blind (arrival-order) installation isolates the broadcast layer:
    # with it, requirement 3.2-(2) is carried *only* by the reliable
    # broadcast's sequence numbers.
    db = FragmentedDatabase(
        ["A", "B", "C"],
        fifo_broadcast=fifo,
        movement=InstantMoveProtocol(),
        seed=2,
    )
    # A jittery network whose channels genuinely reorder messages.
    db.network.jitter = 5.0
    db.network.jitter_rng = db.rng.fork("net-jitter")
    db.network.fifo_channels = False
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()

    def setx(value):
        def body(_ctx):
            yield Write("x", value)

        return body

    for i in range(10):
        db.sim.schedule_at(
            float(i),
            lambda i=i: db.submit_update("ag", setx(i), writes=["x"]),
        )
    db.quiesce()
    values = {name: node.store.read("x") for name, node in db.nodes.items()}
    return {
        "fifo broadcast": fifo,
        "mutually consistent": db.mutual_consistency().consistent,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "final x per node": str(values),
    }


def run_atomicity_ablation(atomic):
    db = FragmentedDatabase(["A", "B"], action_delay=0.5)
    db.add_agent("ag", home_node="A")
    db.add_agent("reader", home_node="B")
    db.add_fragment("F", agent="ag", objects=["p", "q"])
    db.add_fragment("RO", agent="reader", objects=["dummy"])
    db.load({"p": 0, "q": 0, "dummy": 0})
    db.finalize()
    db.nodes["B"].atomic_installs = atomic

    def write_pair(value):
        def body(_ctx):
            yield Write("p", value)
            yield Write("q", value)

        return body

    for i in range(3):
        db.sim.schedule_at(
            i * 10.0,
            lambda i=i: db.submit_update(
                "ag", write_pair(i + 1), writes=["p", "q"]
            ),
        )
    for tick in range(1, 60):
        db.sim.schedule_at(
            tick * 0.6,
            lambda t=tick: db.submit_readonly(
                "reader",
                scripted_body([("r", "p"), ("r", "q")]),
                at="B",
                reads=["p", "q"],
                txn_id=f"R{t}",
            ),
        )
    db.quiesce()
    report = check_property2(db.recorder)
    return {
        "atomic installs": atomic,
        "Property 2 holds": report.ok,
        "torn reads observed": len(report.violations),
    }


def run_lease_ablation(with_lease):
    config = SpectrumConfig()
    strategy = ReadLocksStrategy(
        lock_timeout=config.lock_timeout,
        retry_interval=2.0,
        lock_lease=(None if with_lease else 1e9),
    )
    row = run_fragments_agents(config, strategy, "fa-read-locks",
                               view_mode="own")
    return {
        "lock leases": with_lease,
        "availability": row.availability,
        "denied": row.denied,
        "mutually consistent": row.mutually_consistent,
    }


def test_e12a_fifo_broadcast_ablation(benchmark, report):
    with_fifo, without = run_once(
        benchmark,
        lambda: (run_fifo_ablation(True), run_fifo_ablation(False)),
    )
    headers = list(with_fifo)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (with_fifo, without)],
            title="E12a — ablation: per-sender FIFO broadcast (req. 3.2-2)",
        )
    )
    assert with_fifo["mutually consistent"]
    assert not without["mutually consistent"]


def test_e12b_atomic_install_ablation(benchmark, report):
    atomic, split = run_once(
        benchmark,
        lambda: (run_atomicity_ablation(True), run_atomicity_ablation(False)),
    )
    headers = list(atomic)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (atomic, split)],
            title="E12b — ablation: atomic quasi-transaction installation "
                  "(Property 2)",
        )
    )
    assert atomic["Property 2 holds"]
    assert not split["Property 2 holds"]
    assert split["torn reads observed"] > 0


def test_e12c_lock_lease_ablation(benchmark, report):
    leased, unleased = run_once(
        benchmark, lambda: (run_lease_ablation(True), run_lease_ablation(False))
    )
    headers = list(leased)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (leased, unleased)],
            title="E12c — ablation: Section 4.1 lock leases "
                  "(ghost locks freeze the agent until the heal)",
        )
    )
    # Without leases, grants trapped by the partition pin the hot
    # objects at the central node and more customer requests die.
    assert unleased["availability"] <= leased["availability"]
    assert leased["mutually consistent"]
    assert unleased["mutually consistent"]
