"""E4 — Figure 4.2.1: the warehouse database under Section 4.2.

k warehouses + a central purchasing office; the read-access graph is a
star, hence elementarily acyclic, and the theorem promises global
serializability with zero read synchronization.  A randomized sales /
shipment / scan workload runs through a partition that severs two
warehouses from headquarters.

Measured claims:
  * warehouse operations stay 100% available through the partition;
  * the execution is globally serializable (checked on the recorded
    history, not assumed);
  * stock-conservation invariants hold at every replica;
  * the central office's scans always see a consistent snapshot.
"""

from conftest import run_once

from repro import AcyclicReadsStrategy, FragmentedDatabase
from repro.analysis.report import format_table
from repro.sim.rng import SeededRng
from repro.workloads import WarehouseWorkload


def run_warehouse(n_warehouses=4, horizon=300.0, seed=11):
    rng = SeededRng(seed)
    nodes = [f"W{i}" for i in range(n_warehouses)] + ["HQ"]
    db = FragmentedDatabase(nodes, strategy=AcyclicReadsStrategy(), seed=seed)
    company = WarehouseWorkload(
        db,
        warehouse_nodes={f"w{i}": f"W{i}" for i in range(n_warehouses)},
        central_node="HQ",
        products=["widgets", "gizmos"],
        initial_stock=200,
    )
    db.finalize()

    trackers = []
    t = 0.0
    while True:
        t += rng.exponential(4.0)
        if t >= horizon:
            break
        warehouse = f"w{rng.randint(0, n_warehouses - 1)}"
        product = rng.choice(["widgets", "gizmos"])
        if rng.bernoulli(0.7):
            db.sim.schedule_at(
                t,
                lambda w=warehouse, p=product, q=rng.randint(1, 10): (
                    trackers.append(company.sale(w, p, q))
                ),
            )
        else:
            db.sim.schedule_at(
                t,
                lambda w=warehouse, p=product, q=rng.randint(5, 20): (
                    trackers.append(company.shipment(w, p, q))
                ),
            )
    for scan_time in range(40, int(horizon), 40):
        db.sim.schedule_at(
            float(scan_time), lambda: trackers.append(company.scan_and_order())
        )
    db.sim.schedule_at(
        60.0,
        lambda: db.partitions.partition_now(
            [["W0", "W1"], ["W2", "W3", "HQ"]]
        ),
    )
    db.sim.schedule_at(220.0, db.partitions.heal_now)
    db.quiesce()

    violations = db.predicates.evaluate(db.nodes["HQ"].store)
    return {
        "submitted": len(trackers),
        "committed": sum(1 for t in trackers if t.succeeded),
        "sales": company.stats.sales_granted,
        "refused": company.stats.sales_refused,
        "shipments": company.stats.shipments,
        "scans": company.stats.scans,
        "gs": db.global_serializability().ok,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "mutual": db.mutual_consistency().consistent,
        "violations": violations.total,
        "messages": db.network.messages_sent,
    }


def test_e4_warehouse_acyclic(benchmark, report):
    result = run_once(benchmark, run_warehouse)
    availability = result["committed"] / result["submitted"]
    rows = [
        ["operations submitted", result["submitted"]],
        ["operations committed", result["committed"]],
        ["availability through partition", availability],
        ["sales granted / refused (stock)",
         f"{result['sales']} / {result['refused']}"],
        ["shipments", result["shipments"]],
        ["HQ purchasing scans", result["scans"]],
        ["globally serializable (measured)", result["gs"]],
        ["fragmentwise serializable", result["fragmentwise"]],
        ["mutually consistent", result["mutual"]],
        ["invariant violations", result["violations"]],
        ["messages", result["messages"]],
    ]
    report(
        format_table(
            ["measure", "value"],
            rows,
            title=(
                "E4 / Figure 4.2.1 — warehouses + central office under the "
                "Section 4.2 strategy (W0,W1 severed from HQ for half the run)"
            ),
        )
    )
    assert availability == 1.0  # no read locks, nothing ever blocks
    assert result["gs"]  # the Section 4.2 theorem, observed
    assert result["fragmentwise"]
    assert result["mutual"]
    assert result["violations"] == 0
