"""E10 — reconciliation overhead: the Section 1 critique, measured.

"One of these [problems] is the computation and communication overhead
... the sites had to exchange their transaction logs after the
partition was repaired.  Each of them had to determine which of the
transactions from the received log had to be executed locally and which
... had to be backed out."

The sweep compares, as the partition-era workload grows:

* log transformation — log records exchanged + operations re-executed
  at reconciliation (grows with everything that happened);
* the optimistic protocol — precedence-graph validation + backouts;
* fragments & agents (Section 4.3) — per-update broadcast messages
  only; reconciliation work is ZERO by construction (updates install
  incrementally in stream order, no logs are exchanged, nothing is ever
  backed out).
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.spectrum import (
    SpectrumConfig,
    run_fragments_agents,
    run_log_transform,
    run_optimistic,
)
from repro.core.control.unrestricted import UnrestrictedReadsStrategy

INTERARRIVALS = [16.0, 8.0, 4.0, 2.0]  # higher traffic -> more ops


def sweep():
    rows = []
    for interarrival in INTERARRIVALS:
        config = SpectrumConfig(mean_interarrival=interarrival)
        lt = run_log_transform(config)
        opt = run_optimistic(config)
        fa = run_fragments_agents(
            config,
            UnrestrictedReadsStrategy(),
            "fa-unrestricted",
            view_mode="own",
        )
        replayed = int(lt.notes.split("=")[1]) if lt.notes else 0
        backed_out = int(opt.notes.split("=")[1]) if opt.notes else 0
        rows.append(
            {
                "ops": lt.submitted,
                "lt msgs": lt.messages,
                "lt replayed": replayed,
                "opt backouts": backed_out,
                "fa msgs": fa.messages,
                "fa reconcile work": 0,
                "fa corrective": fa.corrective_actions,
            }
        )
    return rows


def test_e10_overhead(benchmark, report):
    rows = run_once(benchmark, sweep)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                "E10 / Section 1 — reconciliation overhead vs workload "
                "volume (fixed 300-tick partition)"
            ),
        )
    )
    # Log transformation's replay grows with total work...
    replays = [row["lt replayed"] for row in rows]
    assert replays == sorted(replays)
    assert replays[-1] > replays[0]
    # ...while fragments & agents never replays or backs out anything.
    assert all(row["fa reconcile work"] == 0 for row in rows)
    # The optimistic baseline pays in retroactively undone transactions.
    assert rows[-1]["opt backouts"] > 0
