"""E2 — Figure 1.2 + Section 1 scenarios: the baselines head-to-head.

The paper's opening comparison: a $300 account replicated at two
severed sites, identical withdrawal requests at both.

Scenario 1 (two $100 withdrawals): consistent either way — mutual
exclusion sends one customer home empty-handed; log transformation
serves both and discovers no corrective action was needed.

Scenario 2 (two $200 withdrawals): the trade-off in tangible form —
mutual exclusion preserves the balance but denies service; log
transformation serves both, the merged balance goes negative, and the
bank's fine is assessed at reconciliation.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.baselines import LogTransformSystem, MutualExclusionSystem, Operation
from repro.cc.ops import Read, Write


def withdraw_body(amount):
    def body(_ctx):
        balance = yield Read("bal:1")
        if balance >= amount:
            yield Write("bal:1", balance - amount)
            return ("granted", amount)
        return ("refused", balance)

    return body


def banking_apply(state, op):
    key = "bal:1"
    if op.kind == "withdraw" and op.params["granted"]:
        state[key] = state.get(key, 0.0) - op.params["amount"]
    elif op.kind == "fine":
        state[key] = state.get(key, 0.0) - op.params["amount"]


def run_mutex(amount):
    system = MutualExclusionSystem(["A", "B"], token_node="A")
    system.load({"bal:1": 300.0})
    system.partitions.partition_now([["A"], ["B"]])
    at_a = system.submit("A", withdraw_body(amount))
    at_b = system.submit("B", withdraw_body(amount))
    system.partitions.heal_now()
    system.quiesce()
    return {
        "system": "mutual-exclusion",
        "at A": at_a.result[0] if at_a.committed else "DENIED",
        "at B": at_b.result[0] if at_b.committed else "DENIED",
        "final balance": system.stores["A"].read("bal:1"),
        "corrective": 0,
        "consistent": system.mutual_consistency().consistent,
    }


def run_log_transform(amount):
    def correct(state, _ops):
        if state.get("bal:1", 0.0) < 0:
            return [
                Operation("fine", "fine", {"amount": 25.0}, float("inf"), "c")
            ]
        return []

    system = LogTransformSystem(["A", "B"], banking_apply, correct_fn=correct)
    system.load({"bal:1": 300.0})
    system.partitions.partition_now([["A"], ["B"]])
    outcomes = []
    for node in ("A", "B"):
        granted = system.states[node]["bal:1"] >= amount
        system.submit(
            node, "withdraw", {"amount": amount, "granted": granted}
        )
        outcomes.append("granted" if granted else "refused")
    system.partitions.heal_now()
    system.quiesce()
    rep = system.reconcile()
    return {
        "system": "log-transform",
        "at A": outcomes[0],
        "at B": outcomes[1],
        "final balance": system.states["A"]["bal:1"],
        "corrective": len(rep.corrective_ops),
        "consistent": system.mutual_consistency().consistent,
    }


def run_both_scenarios():
    rows = []
    for label, amount in (("scenario 1 ($100)", 100.0),
                          ("scenario 2 ($200)", 200.0)):
        for result in (run_mutex(amount), run_log_transform(amount)):
            rows.append({"scenario": label, **result})
    return rows


def test_e2_banking_baselines(benchmark, report):
    rows = run_once(benchmark, run_both_scenarios)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="E2 / Section 1 — mutual exclusion vs log transformation",
        )
    )
    by_key = {(r["scenario"], r["system"]): r for r in rows}

    s1_mx = by_key[("scenario 1 ($100)", "mutual-exclusion")]
    assert s1_mx["at A"] == "granted" and s1_mx["at B"] == "DENIED"
    assert s1_mx["final balance"] == 200.0

    s1_lt = by_key[("scenario 1 ($100)", "log-transform")]
    assert s1_lt["at A"] == "granted" and s1_lt["at B"] == "granted"
    assert s1_lt["corrective"] == 0  # execution happened to be consistent
    assert s1_lt["final balance"] == 100.0

    s2_mx = by_key[("scenario 2 ($200)", "mutual-exclusion")]
    assert s2_mx["final balance"] == 100.0  # never overdrawn

    s2_lt = by_key[("scenario 2 ($200)", "log-transform")]
    assert s2_lt["at A"] == "granted" and s2_lt["at B"] == "granted"
    assert s2_lt["corrective"] == 1  # the overdraft fine
    assert s2_lt["final balance"] == -125.0

    assert all(r["consistent"] for r in rows)
