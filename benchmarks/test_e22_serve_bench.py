"""E22 — HTTP-path throughput/latency on the asyncio runtime backend.

A concurrent HTTP workload against the served system, with one agent
home hard-killed (socket blackhole + crash) mid-run: every update must
still commit via front-door queue-and-retry riding the supervisor's
failover, and the §4.4 audit over the live trace must be clean.  Real
clocks and sockets mean absolute rates vary by machine, so the gate
against the committed ``BENCH_serve.json`` checks schema and sanity
(all commits land, throughput positive, p50 <= p99, audit ok), never
exact numbers; regenerate with ``python -m repro.cli serve-bench
--json BENCH_serve.json`` after intentional changes.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.serve_bench import (
    check_gates,
    load_committed,
    run_serve_bench,
)


def test_e22_serve_bench(benchmark, report):
    result = run_once(benchmark, run_serve_bench)
    report(
        format_table(
            ["committed", "failovers", "http-retries", "throughput",
             "p50", "p99", "audit"],
            [[
                f"{result['committed']}/{result['submitted']}",
                result["failovers"],
                result["retries"],
                f"{result['throughput_ups']}/s",
                f"{result['p50_ms']}ms",
                f"{result['p99_ms']}ms",
                "ok" if result["audit_ok"] else "VIOLATIONS",
            ]],
            title=(
                f"E22 — HTTP front door on the asyncio backend: "
                f"{result['nodes']} nodes, {result['fragments']} "
                f"fragments, k={result['factor']}, {result['clients']} "
                "clients, one mid-run hard kill"
            ),
        )
    )
    ok, message = check_gates(result, committed=load_committed())
    assert ok, message
    assert result["failovers"] >= 1, (
        "the hard kill must be carried by a supervisor failover"
    )
