"""E11 — mutual consistency convergence (the Section 4.3 t + Δt claim).

"If at time t the processing of new transactions is halted, and it
takes time Δt for all updates to propagate throughout the network, all
copies of fragment Fi will be identical at time t + Δt."

The sweep varies how many updates accumulate behind a partition, halts
the workload, heals, and measures Δt = (time all replicas converge) -
(heal time).  Expected shape: Δt stays bounded by the network diameter
plus install pipelining — it must NOT grow linearly with the backlog
size (installation is pipelined per fragment, and held messages are
released in one wave at the heal).
"""

from conftest import run_once

from repro import FragmentedDatabase
from repro.analysis.report import format_table
from repro.cc.ops import Read, Write
from repro.core.properties import check_mutual_consistency

BACKLOGS = [1, 5, 25, 100]


def measure_convergence(backlog):
    db = FragmentedDatabase(["A", "B", "C", "D"])
    db.add_agent("ag", home_node="A")
    db.add_fragment("F", agent="ag", objects=["x", "y"])
    db.load({"x": 0, "y": 0})
    db.finalize()

    def bump(_ctx):
        value = yield Read("x")
        yield Write("x", value + 1)
        yield Write("y", value + 1)

    db.partitions.partition_now([["A"], ["B", "C", "D"]])
    for i in range(backlog):
        db.sim.schedule_at(
            float(i), lambda: db.submit_update("ag", bump, writes=["x", "y"])
        )
    db.run(until=float(backlog) + 5)  # workload halted (time t)
    heal_time = db.sim.now
    db.partitions.heal_now()

    # Step the simulation and record when replicas first agree.
    converged_at = None
    while db.sim.pending:
        db.run(until=db.sim.now + 0.25)
        if check_mutual_consistency(db.nodes.values()).consistent:
            converged_at = db.sim.now
            break
    db.quiesce()
    assert check_mutual_consistency(db.nodes.values()).consistent
    if converged_at is None:
        converged_at = db.sim.now
    return {
        "backlog (updates held)": backlog,
        "delta-t (ticks to converge)": round(converged_at - heal_time, 2),
        "final x": db.nodes["D"].store.read("x"),
    }


def test_e11_convergence(benchmark, report):
    rows = run_once(
        benchmark, lambda: [measure_convergence(b) for b in BACKLOGS]
    )
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                "E11 / Section 4.3 — convergence time after a heal vs "
                "partition-era backlog (full mesh, latency 1)"
            ),
        )
    )
    # Every replica ends with the full backlog applied.
    for row in rows:
        assert row["final x"] == row["backlog (updates held)"]
    # Δt bounded: a 100x backlog must not cost 100x the convergence time
    # (messages are released in one wave; installs pipeline).
    deltas = [row["delta-t (ticks to converge)"] for row in rows]
    assert deltas[-1] <= deltas[0] * 10
