"""E6 — Figure 4.3.3 + the Section 4.3 airline schedule.

The paper's four-fragment reservations database (C1, C2, F1, F2, all
agents at different nodes) and its worked schedule, where customer 2's
request (T_C2, w, c22) lands *between* flight agent F2's scan actions.

Two measured renditions:

1. **fragments & agents (Section 4.3)** — the schedule is admitted:
   customer requests never wait, overbooking never happens, the
   execution is fragmentwise serializable.  (As the paper notes, the
   conventionally-offensive interleaving "did not result in any serious
   anomalies".)
2. **conventional locking (Section 4.1 as stand-in)** — the same
   request stream under remote read locks: the flight agent's scan
   holds locks on the customer fragments, so customer 2's request is
   DELAYED until the scan completes — the paper's "(T_C2, w, c22) might
   be delayed till T_F2 was completed, reducing availability", measured
   as the request's latency.
"""

from conftest import run_once

from repro import FragmentedDatabase, ReadLocksStrategy
from repro.workloads import AirlineWorkload
from repro.analysis.report import format_table


def build(strategy=None):
    db = FragmentedDatabase(
        ["N1", "N2", "N3", "N4"],
        strategy=strategy,
        action_delay=1.0,
    )
    airline = AirlineWorkload(
        db,
        customer_homes={"c1": "N1", "c2": "N2"},
        flight_homes={"f1": "N3", "f2": "N4"},
        capacity=10,
    )
    return db, airline


def schedule_paper_run(db, airline):
    """The paper's interleaving: requests land mid-scan."""
    trackers = {}
    # T_F2 starts scanning first (its early actions read c12).
    db.sim.schedule_at(
        0.0, lambda: trackers.update(tf2=airline.scan_flight("f2"))
    )
    # T_C1 enters while the scans run.
    db.sim.schedule_at(
        1.0, lambda: trackers.update(tc1=airline.request("c1", "f1", 1))
    )
    db.sim.schedule_at(
        3.0, lambda: trackers.update(tf1=airline.scan_flight("f1"))
    )
    # T_C2's request lands between T_F2's read of c12 and read of c22 —
    # squarely inside the scan's execution window.
    db.sim.schedule_at(
        6.0, lambda: trackers.update(tc2=airline.request("c2", "f2", 1))
    )
    db.quiesce()
    # Periodic re-scans pick up whatever the first pass missed.
    airline.scan_flight("f1")
    airline.scan_flight("f2")
    db.quiesce()
    return trackers


def run_fragments_agents():
    db, airline = build()
    trackers = schedule_paper_run(db, airline)
    return {
        "system": "fragments-agents (4.3)",
        "tc2 latency": trackers["tc2"].latency,
        "tc2 status": trackers["tc2"].status.value,
        "seats f1": airline.seats_reserved("f1", "N3"),
        "seats f2": airline.seats_reserved("f2", "N4"),
        "overbooked": db.predicates.evaluate(db.nodes["N3"].store).single,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "gs": db.global_serializability().ok,
        "mutual": db.mutual_consistency().consistent,
    }


def run_conventional():
    db, airline = build(
        strategy=ReadLocksStrategy(lock_timeout=200.0, retry_interval=1.0)
    )
    trackers = schedule_paper_run(db, airline)
    return {
        "system": "conventional locks (4.1)",
        "tc2 latency": trackers["tc2"].latency,
        "tc2 status": trackers["tc2"].status.value,
        "seats f1": airline.seats_reserved("f1", "N3"),
        "seats f2": airline.seats_reserved("f2", "N4"),
        "overbooked": db.predicates.evaluate(db.nodes["N3"].store).single,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "gs": db.global_serializability().ok,
        "mutual": db.mutual_consistency().consistent,
    }


def test_e6_airline_fragmentwise(benchmark, report):
    fa, conv = run_once(
        benchmark, lambda: (run_fragments_agents(), run_conventional())
    )
    headers = list(fa)
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in (fa, conv)],
            title=(
                "E6 / Figure 4.3.3 — the airline schedule: request entry "
                "decoupled from grant decisions"
            ),
        )
    )
    # Both designs grant every seat eventually and never overbook.
    for row in (fa, conv):
        assert row["seats f1"] == 1 and row["seats f2"] == 1
        assert row["overbooked"] == 0
        assert row["mutual"]
    # Fragments & agents admit the interleaving without delay...
    assert fa["fragmentwise"]
    # ...while the conventional system makes the customer wait for the
    # scanning flight agent's locks (the paper's predicted delay).
    assert conv["tc2 latency"] > fa["tc2 latency"]
