"""E18 — event throughput of the flattened hot path.

The acceptance bar for the flattening PR: the shipping configuration
(versioned path-latency cache on) must push several times the
end-to-end event throughput of the baseline (per-call Dijkstra) on the
same E15-class workload, with **bit-identical** final-state hashes and
event counts — a speedup that changes the schedule is no speedup at
all.  (The original A/B also swapped the scheduler core; since the
binary heap's removal both sides run the event-wheel, so the measured
ratio isolates the path-cache win and the bar is set accordingly.)

The committed record lives in ``BENCH_scale.json`` at the repo root;
regenerate it with ``python -m repro.cli scale-bench --json
BENCH_scale.json`` after intentional performance changes.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.scale_bench import run_scale_bench

NODES = 32
UPDATES = 400
MIN_SPEEDUP = 4.0
#: Timing repeats per side; the fastest sample wins, which keeps the
#: ratio stable on noisy CI machines.
REPEATS = 3


def test_e18_scale_bench(benchmark, report):
    result = run_once(
        benchmark,
        lambda: run_scale_bench(NODES, UPDATES, repeats=REPEATS),
    )
    base = result["baseline"]
    flat = result["flattened"]
    report(
        format_table(
            ["side", "path cache", "events", "elapsed s", "events/s"],
            [
                ["baseline", base["path_cache"],
                 base["events_fired"], base["elapsed_s"],
                 base["throughput_eps"]],
                ["flattened", flat["path_cache"],
                 flat["events_fired"], flat["elapsed_s"],
                 flat["throughput_eps"]],
            ],
            title=(
                f"E18 — flattened hot path: {NODES} nodes, {UPDATES} "
                f"updates, speedup {result['speedup']}x"
            ),
        )
    )
    # Determinism is the hard constraint: same hashes, same counts.
    assert result["state_match"], "final-state hashes diverged"
    assert result["events_match"], "event counts diverged"
    assert base["mutually_consistent"] and flat["mutually_consistent"]
    assert base["committed"] == UPDATES
    assert flat["committed"] == UPDATES
    # The tentpole claim.
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"throughput speedup {result['speedup']}x below the "
        f"{MIN_SPEEDUP}x bar"
    )
