"""E17 — checkpoint & rejoin cost: full replay vs delta vs snapshot.

E14 established that crash/recover converges; this bench measures what
the convergence *costs* under the three recovery configurations of
:mod:`repro.analysis.recovery_bench` — the same seeded workload, one
replica down from 30% of the horizon until after the traffic ends:

* ``full`` (subsystem disarmed) replays the whole WAL and retains the
  whole archive forever;
* ``checkpoint`` (watermark pinned by the downed replica) restores
  checkpoint + WAL suffix and ships only the missed delta;
* ``snapshot`` (grace elapsed, logs compacted past the rejoiner)
  ships a checkpoint plus the retained tail.

The bounded-logs claims asserted here are the subsystem's contract:
bytes shipped scale with the gap (or fragment size), not run history,
and retained state under checkpointing is a fraction of the disarmed
baseline.  Emits ``BENCH_recovery.json`` at the repo root.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.analysis.recovery_bench import MODES, run_rejoin_comparison
from repro.analysis.report import format_table

SEEDS = (3, 7, 19)
UPDATES = 60
EVERY = 8
GRACE = 60.0


def sweep():
    rows = []
    for seed in SEEDS:
        results = run_rejoin_comparison(
            seed=seed, n_updates=UPDATES, checkpoint_every=EVERY, grace=GRACE
        )
        for mode in MODES:
            rows.append(results[mode].as_dict())
    return rows


def test_e17_checkpoint_recovery(benchmark, report):
    rows = run_once(benchmark, sweep)
    headers = [
        "mode", "seed", "wal_replayed", "checkpoints", "archive_pruned",
        "delta_qts_shipped", "checkpoints_shipped", "bytes_shipped",
        "retained_bytes", "rejoin_ticks", "consistent", "audit_ok",
    ]
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                f"E17 — checkpoint & rejoin cost ({len(SEEDS)} seeds, "
                f"{UPDATES} updates, checkpoint every {EVERY}, "
                f"grace {GRACE:g})"
            ),
        )
    )
    by_mode = {mode: [r for r in rows if r["mode"] == mode] for mode in MODES}
    for row in rows:
        assert row["consistent"] and row["audit_ok"], row
    for full, ckpt, snap in zip(
        by_mode["full"], by_mode["checkpoint"], by_mode["snapshot"]
    ):
        # Checkpoint + WAL-suffix restore replays a fraction of the log.
        assert ckpt["wal_replayed"] < full["wal_replayed"]
        assert snap["wal_replayed"] < full["wal_replayed"]
        # Snapshot shipping beats replaying the rejoiner's whole gap.
        assert snap["bytes_shipped"] < full["bytes_shipped"]
        assert snap["checkpoints_shipped"] >= 1
        assert full["checkpoints_shipped"] == 0
        # Compaction bounds retained state; disarmed retains everything.
        assert ckpt["retained_bytes"] < full["retained_bytes"]
        assert snap["retained_bytes"] < full["retained_bytes"]
        assert full["archive_pruned"] == 0 and ckpt["archive_pruned"] > 0
    baseline = {
        "bench": "e17_checkpoint_recovery",
        "workload": {
            "seeds": list(SEEDS),
            "updates": UPDATES,
            "checkpoint_every": EVERY,
            "grace": GRACE,
        },
        "rows": rows,
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    report(f"recovery baseline -> {path.name}: {len(rows)} rows")
