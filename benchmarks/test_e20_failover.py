"""E20 — write availability with and without the availability supervisor.

One seeded workload, every agent's home crash-stopped mid-run.  With
the supervisor armed every logical update commits (failover bounds the
outage; clients resubmit through it) and the lineage audit — including
epoch fencing — stays clean; without it, updates against the dead
homes stay blocked for the rest of the run.  The run is deterministic,
so the result is also compared field-for-field against the committed
``BENCH_availability.json``; regenerate with ``python -m repro.cli
failover-bench --json BENCH_availability.json`` after intentional
changes.
"""

from conftest import run_once

from repro.analysis.failover_bench import (
    check_gates,
    load_committed,
    run_failover_bench,
)
from repro.analysis.report import format_table


def test_e20_failover_bench(benchmark, report):
    result = run_once(benchmark, run_failover_bench)
    rows = []
    for tag in ("supervised", "unsupervised"):
        mode = result[tag]
        rows.append(
            [
                tag,
                f"{mode['committed']}/{mode['submitted']}",
                mode["blocked"],
                mode["failovers"],
                mode["max_unavailability"],
                mode["mttr_max"],
                "ok" if mode["audit_ok"] else "VIOLATIONS",
            ]
        )
    report(
        format_table(
            [
                "mode", "committed", "blocked", "failovers",
                "max-unavail", "mttr-max", "audit",
            ],
            rows,
            title=(
                f"E20 — availability failover: {result['nodes']} nodes, "
                f"{result['fragments']} fragments, k="
                f"{result['replication_factor']}"
            ),
        )
    )
    ok, messages = check_gates(result, committed=load_committed())
    assert ok, "\n".join(messages)
