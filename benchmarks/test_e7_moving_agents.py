"""E7 — Figure 4.4.1 + the Section 4.4 protocols: missing transactions.

The scripted hazard: agent A runs T1 at X while X is partitioned away,
the token then travels (physically — tokens cross partitions) to Y,
and A immediately runs T2 on the same object; the partition heals much
later.  Replayed under the no-protection baseline and all four paper
protocols.

Expected guarantee matrix (the paper's, measured):

    protocol     T1 outcome   MC    FW    availability cost
    none         committed    NO    NO    none (and it shows)
    majority     REJECTED     yes   yes   minority updates denied
    with-data    committed    yes   yes   token transport only
    with-seqno   committed    yes   yes   T2 waits for the heal
    corrective   committed    yes   NO    none (post-hoc repair)
"""

from conftest import run_once

from repro import (
    CorrectiveMoveProtocol,
    FragmentedDatabase,
    InstantMoveProtocol,
    MajorityCommitProtocol,
    MoveWithDataProtocol,
    MoveWithSeqnoProtocol,
)
from repro.analysis.report import format_table, pipeline_latency_rows
from repro.cc.ops import Write

HEAL_AT = 60.0


def run_protocol(protocol, pipeline=None, db_sink=None):
    db = FragmentedDatabase(["X", "Y", "Z"], movement=protocol,
                            pipeline=pipeline)
    db.add_agent("ag", home_node="X")
    db.add_fragment("F", agent="ag", objects=["v"])
    db.load({"v": 0})
    db.finalize()

    def setv(value):
        def body(_ctx):
            yield Write("v", value)

        return body

    results = {}
    db.sim.schedule_at(
        1, lambda: db.partitions.partition_now([["X"], ["Y", "Z"]])
    )
    db.sim.schedule_at(5, lambda: results.update(
        t1=db.submit_update("ag", setv(111), writes=["v"], txn_id="T1")))
    db.sim.schedule_at(10, lambda: db.move_agent("ag", "Y", transport_delay=2))
    db.sim.schedule_at(25, lambda: results.update(
        t2=db.submit_update("ag", setv(222), writes=["v"], txn_id="T2")))
    db.sim.schedule_at(HEAL_AT, db.partitions.heal_now)
    db.quiesce()

    finals = {name: node.store.read("v") for name, node in db.nodes.items()}
    if db_sink is not None:
        db_sink.append(db)
    return {
        "protocol": protocol.name,
        "T1": results["t1"].status.value,
        "T2": results["t2"].status.value,
        "T2 latency": results["t2"].latency,
        "MC": db.mutual_consistency().consistent,
        "FW": db.fragmentwise_serializability().ok,
        "final v": finals["X"] if len(set(finals.values())) == 1 else str(finals),
        "msgs": db.network.messages_sent,
    }


def run_all():
    return [
        run_protocol(InstantMoveProtocol()),
        run_protocol(MajorityCommitProtocol()),
        run_protocol(MoveWithDataProtocol()),
        run_protocol(MoveWithSeqnoProtocol()),
        run_protocol(CorrectiveMoveProtocol()),
    ]


def test_e7_moving_agents(benchmark, report):
    rows = run_once(benchmark, run_all)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                "E7 / Figure 4.4.1 — agent moves X->Y mid-partition; "
                "T1@X and T2@Y write the same object; heal at t=60"
            ),
        )
    )
    by_name = {row["protocol"]: row for row in rows}

    none = by_name["none"]
    assert none["T1"] == "committed" and none["T2"] == "committed"
    assert not none["MC"]  # replicas diverge — the paper's hazard
    assert not none["FW"]

    majority = by_name["majority"]
    assert majority["T1"] == "rejected"  # X was a 1-of-3 minority
    assert majority["MC"] and majority["FW"]

    with_data = by_name["with-data"]
    assert with_data["T1"] == "committed" and with_data["T2"] == "committed"
    assert with_data["MC"] and with_data["FW"]
    assert with_data["T2 latency"] == 0.0  # resumes instantly

    with_seqno = by_name["with-seqno"]
    assert with_seqno["MC"] and with_seqno["FW"]
    # T2 waited for T1 to arrive after the heal: latency spans the gap.
    assert with_seqno["T2 latency"] > HEAL_AT - 25

    corrective = by_name["corrective"]
    assert corrective["T1"] == "committed"
    assert corrective["T2 latency"] == 0.0  # "as soon as it arrives"
    assert corrective["MC"]  # eventual mutual consistency
    assert not corrective["FW"]  # knowingly sacrificed
    # Every consistency-preserving protocol converges on T2's value.
    for name in ("majority", "with-data", "with-seqno", "corrective"):
        assert by_name[name]["final v"] == 222


def test_e7b_moving_agents_batched(benchmark, report):
    """The Figure 4.4.1 guarantee matrix is unchanged under group
    commit: batches ride the same pipeline the move protocols gate."""
    from repro import PipelineConfig

    config = PipelineConfig(batch_size=4, batch_window=2.0)
    dbs = []

    def run_all_batched():
        dbs.clear()
        return [
            run_protocol(InstantMoveProtocol(), pipeline=config, db_sink=dbs),
            run_protocol(MajorityCommitProtocol(), pipeline=config,
                         db_sink=dbs),
            run_protocol(MoveWithDataProtocol(), pipeline=config,
                         db_sink=dbs),
            run_protocol(MoveWithSeqnoProtocol(), pipeline=config,
                         db_sink=dbs),
            run_protocol(CorrectiveMoveProtocol(), pipeline=config,
                         db_sink=dbs),
        ]

    rows = run_once(benchmark, run_all_batched)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="E7b — the same hazard under group commit (batch 4 / 2.0)",
        )
    )
    latency_rows = []
    for row, db in zip(rows, dbs):
        for stage in pipeline_latency_rows(db.snapshot()):
            latency_rows.append([row["protocol"], *stage])
    report(
        format_table(
            ["protocol", "stage", "count", "p50", "p90", "max"],
            latency_rows,
            title="E7b — pipeline stage waits + propagation latency",
        )
    )
    # The always-on histograms saw the run: every protocol batched and
    # replicated across the partition, so propagation was observed.
    stages = {(r[0], r[1]) for r in latency_rows}
    for name in ("none", "with-data", "corrective"):
        assert (name, "pipeline.batch_wait") in stages, name
        assert (name, "pipeline.propagation.F") in stages, name
    by_name = {row["protocol"]: row for row in rows}
    assert not by_name["none"]["MC"]
    for name in ("majority", "with-data", "with-seqno", "corrective"):
        assert by_name[name]["MC"], name
        assert by_name[name]["final v"] == 222, name
    for name in ("majority", "with-data", "with-seqno"):
        assert by_name[name]["FW"], name
