"""E13 — the Section 4.4 guarantee matrix under randomized stress.

E7 replays one scripted hazard; this sweep drives every movement
protocol through 60 randomized runs (random traffic, 3 agent hops,
random partitions) and counts how often each property broke.  The
paper's protocol table must emerge from the aggregate:

* the three consistency-preserving protocols (majority, with-data,
  with-seqno) break *nothing*, ever;
* the corrective protocol preserves mutual consistency in every run
  while sacrificing fragmentwise serializability in a large share;
* the unprotected baseline breaks both, frequently.

Availability cost also surfaces: the majority protocol commits fewer
of the submitted updates (minority-side rejections + resync queuing)
than the token-carrying protocols.
"""

from conftest import run_once

from repro.analysis.report import format_table, pipeline_latency_rows
from repro.analysis.torture import PROTOCOLS, run_movement_torture
from repro.replication import PipelineConfig

RUNS = 60
BATCHED_RUNS = 20
BATCHED = PipelineConfig(batch_size=4, batch_window=3.0)


def sweep():
    rows = []
    for protocol in PROTOCOLS:
        mc_breaks = 0
        fw_breaks = 0
        committed = 0
        submitted = 0
        for seed in range(RUNS):
            result = run_movement_torture(seed, protocol)
            mc_breaks += not result.mutually_consistent
            fw_breaks += not result.fragmentwise
            committed += result.committed
            submitted += result.submitted
        rows.append(
            {
                "protocol": protocol,
                "runs": RUNS,
                "MC broken": mc_breaks,
                "FW broken": fw_breaks,
                "committed": committed,
                "submitted": submitted,
                "availability": committed / submitted,
            }
        )
    return rows


def test_e13_movement_torture(benchmark, report):
    rows = run_once(benchmark, sweep)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                f"E13 / Section 4.4 — movement protocols under randomized "
                f"stress ({RUNS} runs each: 15 updates, 3 moves, random "
                f"partitions)"
            ),
        )
    )
    by_name = {row["protocol"]: row for row in rows}
    for protocol in ("majority", "with-data", "with-seqno"):
        assert by_name[protocol]["MC broken"] == 0
        assert by_name[protocol]["FW broken"] == 0
    assert by_name["corrective"]["MC broken"] == 0
    assert by_name["corrective"]["FW broken"] > 0
    assert by_name["none"]["MC broken"] > 0
    assert by_name["none"]["FW broken"] > 0
    # Safety costs availability: majority commits least.
    assert (
        by_name["majority"]["availability"]
        < by_name["with-data"]["availability"]
    )


def test_e13b_torture_with_batching(benchmark, report):
    """The guarantee matrix is batching-invariant: group commit is a
    transport envelope, not a semantics change."""

    latency = {}

    def sweep_batched():
        rows = []
        for protocol in ("majority", "with-data", "with-seqno", "corrective"):
            mc_breaks = 0
            for seed in range(BATCHED_RUNS):
                dbs = []
                result = run_movement_torture(
                    seed, protocol, pipeline=BATCHED, db_sink=dbs
                )
                mc_breaks += not result.mutually_consistent
                if seed == 0:
                    latency[protocol] = pipeline_latency_rows(
                        dbs[0].snapshot()
                    )
            rows.append({"protocol": protocol, "MC broken": mc_breaks})
        return rows

    rows = run_once(benchmark, sweep_batched)
    headers = list(rows[0])
    report(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                f"E13b — movement torture under group commit "
                f"(batch_size={BATCHED.batch_size}, "
                f"window={BATCHED.batch_window}; {BATCHED_RUNS} runs each)"
            ),
        )
    )
    report(
        format_table(
            ["protocol", "stage", "count", "p50", "p90", "max"],
            [
                [protocol, *stage]
                for protocol, stages in latency.items()
                for stage in stages
            ],
            title="E13b — pipeline stage waits + propagation latency (seed 0)",
        )
    )
    for row in rows:
        assert row["MC broken"] == 0, row["protocol"]
        # Group commit actually grouped: batch waits were recorded, and
        # remote installs fed the per-fragment propagation histogram.
        stages = {r[0] for r in latency[row["protocol"]]}
        assert "pipeline.batch_wait" in stages, row["protocol"]
        assert "pipeline.propagation.F" in stages, row["protocol"]
